// Gated: requires the external `proptest` crate (not vendored in this
// offline build). Enable with `--features proptest` after adding the
// dev-dependency.
#![cfg(feature = "proptest")]

//! Property-based tests: the R*-tree agrees with brute force and keeps
//! its invariants under arbitrary insert/delete interleavings.

use proptest::prelude::*;
use spatialdb_disk::Disk;
use spatialdb_geom::{Point, Rect};
use spatialdb_rtree::validate::check_invariants;
use spatialdb_rtree::{LeafEntry, NoIo, ObjectId, RStarTree, RTreeConfig};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0.0f64..100.0, 0.0f64..100.0, 0.01f64..8.0, 0.01f64..8.0)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

fn config(m: usize, leaf_reinsert: bool, payload_limit: Option<u64>) -> RTreeConfig {
    RTreeConfig {
        max_entries: m,
        min_fill_ratio: 0.4,
        reinsert_fraction: 0.3,
        leaf_reinsert_enabled: leaf_reinsert,
        leaf_payload_limit: payload_limit,
    }
}

fn build(rects: &[Rect], cfg: RTreeConfig) -> RStarTree {
    let disk = Disk::with_defaults();
    let mut t = RStarTree::new(cfg, disk.create_region("t"));
    for (i, r) in rects.iter().enumerate() {
        t.insert(LeafEntry::new(*r, ObjectId(i as u64), 64), &mut NoIo);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_query_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 1..300),
        window in arb_rect(),
        m in 4usize..16,
    ) {
        let t = build(&rects, config(m, true, None));
        check_invariants(&t).unwrap();
        let mut got: Vec<u64> = t.window_entries(&window, &mut NoIo)
            .iter().map(|e| e.oid.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = rects.iter().enumerate()
            .filter(|(_, r)| r.intersects(&window))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn point_query_matches_brute_force(
        rects in prop::collection::vec(arb_rect(), 1..200),
        px in 0.0f64..110.0,
        py in 0.0f64..110.0,
    ) {
        let t = build(&rects, config(8, true, None));
        let p = Point::new(px, py);
        let mut got: Vec<u64> = t.point_entries(&p, &mut NoIo)
            .iter().map(|e| e.oid.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = rects.iter().enumerate()
            .filter(|(_, r)| r.contains_point(&p))
            .map(|(i, _)| i as u64)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn invariants_hold_without_leaf_reinsert(
        rects in prop::collection::vec(arb_rect(), 1..300),
    ) {
        let t = build(&rects, config(8, false, None));
        check_invariants(&t).unwrap();
        prop_assert_eq!(t.len(), rects.len());
    }

    #[test]
    fn invariants_hold_with_payload_limit(
        rects in prop::collection::vec(arb_rect(), 1..200),
        limit in 128u64..1024,
    ) {
        let t = build(&rects, config(8, false, Some(limit)));
        check_invariants(&t).unwrap();
        // Every multi-entry leaf respects the limit (entries carry 64 B).
        for (_, leaf) in t.leaves() {
            if leaf.len() > 1 {
                prop_assert!(leaf.payload() <= limit);
            }
        }
    }

    #[test]
    fn insert_delete_roundtrip(
        rects in prop::collection::vec(arb_rect(), 1..120),
        delete_mask in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let mut t = build(&rects, config(6, true, None));
        let mut remaining: Vec<(u64, Rect)> = rects.iter().enumerate()
            .map(|(i, r)| (i as u64, *r)).collect();
        for (i, &del) in delete_mask.iter().enumerate() {
            if del && i < rects.len() {
                let out = t.delete(ObjectId(i as u64), &rects[i], &mut NoIo);
                prop_assert!(out.removed);
                remaining.retain(|(id, _)| *id != i as u64);
                check_invariants(&t).unwrap();
            }
        }
        prop_assert_eq!(t.len(), remaining.len());
        // Everything remaining is still findable.
        let everything = Rect::new(-1.0, -1.0, 200.0, 200.0);
        let mut got: Vec<u64> = t.window_entries(&everything, &mut NoIo)
            .iter().map(|e| e.oid.0).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = remaining.iter().map(|(id, _)| *id).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn leaves_partition_the_objects(
        rects in prop::collection::vec(arb_rect(), 1..300),
    ) {
        let t = build(&rects, config(10, true, None));
        let mut seen = std::collections::HashSet::new();
        for (_, leaf) in t.leaves() {
            for e in leaf.leaf_entries() {
                prop_assert!(seen.insert(e.oid), "duplicate {:?}", e.oid);
            }
        }
        prop_assert_eq!(seen.len(), rects.len());
    }

    #[test]
    fn height_is_logarithmic(
        n in 50usize..400,
    ) {
        // A packed grid of n entries with M=8 must have height
        // O(log_m n): no degenerate linear chains.
        let rects: Vec<Rect> = (0..n).map(|i| {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            Rect::new(x, y, x + 0.5, y + 0.5)
        }).collect();
        let t = build(&rects, config(8, true, None));
        // ceil(log_3(n)) is a generous upper bound (min fill ≥ 3 with M=8
        // is not guaranteed mid-build, so allow slack).
        let bound = ((n as f64).ln() / 3.0f64.ln()).ceil() as u32 + 2;
        prop_assert!(t.height() <= bound, "height {} n {}", t.height(), n);
    }
}

//! The R\*-tree split algorithm (\[BKSS90\] §4.2).
//!
//! The split proceeds in two steps:
//!
//! 1. **ChooseSplitAxis**: for each axis, sort the entries by their lower
//!    and by their upper rectangle value; for every legal distribution
//!    (first group sizes `m … count − m`) of both sortings compute the sum
//!    of the two group margins; the axis with the minimum total margin sum
//!    wins.
//! 2. **ChooseSplitIndex**: along the chosen axis, pick the distribution
//!    with minimal overlap between the two group rectangles, resolving
//!    ties by minimal total area.

use crate::entry::SplitItem;
use spatialdb_geom::Rect;

/// A chosen distribution: indices of the items in each group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Distribution {
    /// Indices (into the input slice) of the first group.
    pub first: Vec<usize>,
    /// Indices of the second group.
    pub second: Vec<usize>,
}

fn group_rect<T: SplitItem>(items: &[T], idx: &[usize]) -> Rect {
    idx.iter()
        .fold(Rect::empty(), |acc, &i| acc.union(&items[i].rect()))
}

/// One axis-sorted candidate order (indices sorted by a key).
fn sorted_indices<T: SplitItem, F: Fn(&Rect) -> (f64, f64)>(items: &[T], key: F) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..items.len()).collect();
    idx.sort_by(|&a, &b| {
        let ka = key(&items[a].rect());
        let kb = key(&items[b].rect());
        ka.0.total_cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
    });
    idx
}

/// Margin sum over all legal distributions of one sorted order, and the
/// best (min overlap, tie min area) distribution seen.
struct AxisScan {
    margin_sum: f64,
    best_overlap: f64,
    best_area: f64,
    best_split: usize,
}

fn scan_order<T: SplitItem>(items: &[T], order: &[usize], min_entries: usize) -> AxisScan {
    let n = order.len();
    debug_assert!(min_entries >= 1 && 2 * min_entries <= n);
    // Prefix and suffix group rectangles for O(n) scanning.
    let mut prefix = Vec::with_capacity(n);
    let mut acc = Rect::empty();
    for &i in order {
        acc = acc.union(&items[i].rect());
        prefix.push(acc);
    }
    let mut suffix = vec![Rect::empty(); n];
    let mut acc = Rect::empty();
    for k in (0..n).rev() {
        acc = acc.union(&items[order[k]].rect());
        suffix[k] = acc;
    }
    let mut scan = AxisScan {
        margin_sum: 0.0,
        best_overlap: f64::INFINITY,
        best_area: f64::INFINITY,
        best_split: min_entries,
    };
    for split in min_entries..=(n - min_entries) {
        let r1 = prefix[split - 1];
        let r2 = suffix[split];
        scan.margin_sum += r1.margin() + r2.margin();
        let overlap = r1.overlap_area(&r2);
        let area = r1.area() + r2.area();
        if overlap < scan.best_overlap || (overlap == scan.best_overlap && area < scan.best_area) {
            scan.best_overlap = overlap;
            scan.best_area = area;
            scan.best_split = split;
        }
    }
    scan
}

/// Compute the R\*-tree split of `items` with the given minimum group
/// size.
///
/// # Panics
///
/// Panics if fewer than two items are supplied or `min_entries` does not
/// leave both groups non-empty.
pub(crate) fn rstar_split<T: SplitItem>(items: &[T], min_entries: usize) -> Distribution {
    let n = items.len();
    assert!(n >= 2, "cannot split fewer than 2 items");
    let m = min_entries.clamp(1, n / 2);

    // Four candidate orders: lower/upper value of each axis.
    let by_xmin = sorted_indices(items, |r| (r.xmin, r.xmax));
    let by_xmax = sorted_indices(items, |r| (r.xmax, r.xmin));
    let by_ymin = sorted_indices(items, |r| (r.ymin, r.ymax));
    let by_ymax = sorted_indices(items, |r| (r.ymax, r.ymin));

    let sx_min = scan_order(items, &by_xmin, m);
    let sx_max = scan_order(items, &by_xmax, m);
    let sy_min = scan_order(items, &by_ymin, m);
    let sy_max = scan_order(items, &by_ymax, m);

    let x_margin = sx_min.margin_sum + sx_max.margin_sum;
    let y_margin = sy_min.margin_sum + sy_max.margin_sum;

    // Pick the winning axis, then the better of its two sortings.
    let (order, scan) = if x_margin <= y_margin {
        if (sx_min.best_overlap, sx_min.best_area) <= (sx_max.best_overlap, sx_max.best_area) {
            (&by_xmin, sx_min)
        } else {
            (&by_xmax, sx_max)
        }
    } else if (sy_min.best_overlap, sy_min.best_area) <= (sy_max.best_overlap, sy_max.best_area) {
        (&by_ymin, sy_min)
    } else {
        (&by_ymax, sy_max)
    };

    Distribution {
        first: order[..scan.best_split].to_vec(),
        second: order[scan.best_split..].to_vec(),
    }
}

/// Convenience: the MBRs of the two groups of a distribution.
pub(crate) fn distribution_rects<T: SplitItem>(items: &[T], d: &Distribution) -> (Rect, Rect) {
    (group_rect(items, &d.first), group_rect(items, &d.second))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{LeafEntry, ObjectId};

    fn e(xmin: f64, ymin: f64, xmax: f64, ymax: f64, id: u64) -> LeafEntry {
        LeafEntry::new(Rect::new(xmin, ymin, xmax, ymax), ObjectId(id), 0)
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two groups far apart along x: the split must separate them.
        let mut items = Vec::new();
        for i in 0..5 {
            items.push(e(i as f64 * 0.1, 0.0, i as f64 * 0.1 + 0.05, 0.1, i));
        }
        for i in 0..5 {
            items.push(e(
                10.0 + i as f64 * 0.1,
                0.0,
                10.0 + i as f64 * 0.1 + 0.05,
                0.1,
                100 + i,
            ));
        }
        let d = rstar_split(&items, 2);
        let (r1, r2) = distribution_rects(&items, &d);
        assert_eq!(r1.overlap_area(&r2), 0.0);
        assert_eq!(d.first.len() + d.second.len(), 10);
        // All of one cluster on each side.
        let left: Vec<usize> = (0..5).collect();
        let first_is_left = d.first.contains(&0);
        let (f, s) = if first_is_left {
            (&d.first, &d.second)
        } else {
            (&d.second, &d.first)
        };
        for i in left {
            assert!(f.contains(&i));
        }
        for i in 5..10 {
            assert!(s.contains(&i));
        }
    }

    #[test]
    fn split_respects_min_entries() {
        let items: Vec<LeafEntry> = (0..10)
            .map(|i| e(i as f64, 0.0, i as f64 + 0.5, 1.0, i))
            .collect();
        for m in 1..=5 {
            let d = rstar_split(&items, m);
            assert!(d.first.len() >= m);
            assert!(d.second.len() >= m);
            assert_eq!(d.first.len() + d.second.len(), 10);
        }
    }

    #[test]
    fn split_covers_all_indices_exactly_once() {
        let items: Vec<LeafEntry> = (0..37)
            .map(|i| {
                let x = (i as f64 * 7.3) % 10.0;
                let y = (i as f64 * 3.1) % 10.0;
                e(x, y, x + 0.4, y + 0.7, i)
            })
            .collect();
        let d = rstar_split(&items, 14);
        let mut all: Vec<usize> = d.first.iter().chain(d.second.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn split_two_items() {
        let items = vec![e(0.0, 0.0, 1.0, 1.0, 0), e(5.0, 5.0, 6.0, 6.0, 1)];
        let d = rstar_split(&items, 1);
        assert_eq!(d.first.len(), 1);
        assert_eq!(d.second.len(), 1);
    }

    #[test]
    fn vertical_clusters_split_on_y() {
        let mut items = Vec::new();
        for i in 0..6 {
            items.push(e(0.0, i as f64 * 0.1, 1.0, i as f64 * 0.1 + 0.05, i));
        }
        for i in 0..6 {
            items.push(e(
                0.0,
                20.0 + i as f64 * 0.1,
                1.0,
                20.0 + i as f64 * 0.1 + 0.05,
                10 + i,
            ));
        }
        let d = rstar_split(&items, 2);
        let (r1, r2) = distribution_rects(&items, &d);
        assert_eq!(r1.overlap_area(&r2), 0.0);
    }
}

//! Structural invariant checks (used extensively by the test suites).

use crate::node::{NodeId, NodeKind};
use crate::tree::RStarTree;
use std::collections::HashSet;

/// A violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation(pub String);

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R*-tree invariant violated: {}", self.0)
    }
}

impl std::error::Error for Violation {}

/// Check every structural invariant of the tree:
///
/// 1. the root has no parent; every other reachable node's parent pointer
///    matches the directory structure;
/// 2. every directory entry's MBR equals the MBR of its child node;
/// 3. levels decrease by exactly one per tree edge and leaves are at
///    level 0;
/// 4. no node exceeds `M` entries; non-root nodes hold at least one
///    entry; leaves respect the payload limit (unless a single oversized
///    entry makes that impossible);
/// 5. every object id appears in exactly one leaf entry and the total
///    matches `tree.len()`;
/// 6. the number of reachable nodes equals the node-store population.
pub fn check_invariants(tree: &RStarTree) -> Result<(), Violation> {
    let mut seen_oids = HashSet::new();
    let mut reachable = 0usize;
    let mut entry_count = 0usize;
    let root = tree.root();
    if tree.node(root).parent.is_some() {
        return Err(Violation("root has a parent".into()));
    }
    let mut stack: Vec<NodeId> = vec![root];
    while let Some(id) = stack.pop() {
        reachable += 1;
        let node = tree.node(id);
        let count = node.len();
        if count > tree.config().max_entries {
            return Err(Violation(format!(
                "node {id} holds {count} > M = {} entries",
                tree.config().max_entries
            )));
        }
        if id != root && count == 0 {
            return Err(Violation(format!("non-root node {id} is empty")));
        }
        match &node.kind {
            NodeKind::Leaf(entries) => {
                if node.level != 0 {
                    return Err(Violation(format!("leaf {id} at level {} != 0", node.level)));
                }
                if let Some(limit) = tree.config().leaf_payload_limit {
                    if node.payload() > limit && entries.len() > 1 {
                        return Err(Violation(format!(
                            "leaf {id} payload {} > limit {limit}",
                            node.payload()
                        )));
                    }
                }
                for e in entries {
                    if !seen_oids.insert(e.oid) {
                        return Err(Violation(format!("duplicate object {}", e.oid)));
                    }
                    if !e.mbr.is_finite() {
                        return Err(Violation(format!("non-finite MBR for {}", e.oid)));
                    }
                }
                entry_count += entries.len();
            }
            NodeKind::Dir(entries) => {
                for e in entries {
                    let child = tree.node(e.child);
                    if child.parent != Some(id) {
                        return Err(Violation(format!(
                            "child {} of {id} has parent {:?}",
                            e.child, child.parent
                        )));
                    }
                    if child.level + 1 != node.level {
                        return Err(Violation(format!(
                            "child {} at level {} under node {id} at level {}",
                            e.child, child.level, node.level
                        )));
                    }
                    let actual = child.mbr();
                    if actual != e.mbr {
                        return Err(Violation(format!(
                            "stale MBR for child {} of {id}: cached {} actual {}",
                            e.child, e.mbr, actual
                        )));
                    }
                    stack.push(e.child);
                }
            }
        }
    }
    if entry_count != tree.len() {
        return Err(Violation(format!(
            "tree.len() = {} but {entry_count} leaf entries reachable",
            tree.len()
        )));
    }
    if reachable != tree.num_nodes() {
        return Err(Violation(format!(
            "{} nodes in store but {reachable} reachable",
            tree.num_nodes()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::entry::{LeafEntry, ObjectId};
    use crate::io::NoIo;
    use spatialdb_disk::Disk;
    use spatialdb_geom::Rect;

    #[test]
    fn valid_tree_passes() {
        let disk = Disk::with_defaults();
        let mut t = RStarTree::new(
            RTreeConfig {
                max_entries: 6,
                min_fill_ratio: 0.4,
                reinsert_fraction: 0.3,
                leaf_reinsert_enabled: true,
                leaf_payload_limit: None,
            },
            disk.create_region("t"),
        );
        for i in 0..500u64 {
            let x = (i % 31) as f64 * 1.3;
            let y = (i / 31) as f64 * 0.7;
            t.insert(
                LeafEntry::new(Rect::new(x, y, x + 1.0, y + 1.0), ObjectId(i), 0),
                &mut NoIo,
            );
        }
        check_invariants(&t).unwrap();
    }

    #[test]
    fn violation_displays() {
        let v = Violation("test".into());
        assert!(v.to_string().contains("test"));
    }
}

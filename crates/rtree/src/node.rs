//! Tree nodes and the node store.

use crate::entry::{DirEntry, LeafEntry};
use spatialdb_disk::PageId;
use spatialdb_geom::Rect;

/// Identifier of a node within one tree's node store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The entries of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// A data page holding object entries.
    Leaf(Vec<LeafEntry>),
    /// A directory page holding child entries.
    Dir(Vec<DirEntry>),
}

/// One R\*-tree node. A node corresponds to one page on the simulated
/// disk (§4.1: *"A node of the R(\*)-tree corresponds to a page on
/// secondary storage"*).
#[derive(Clone, Debug)]
pub struct Node {
    /// Entries.
    pub kind: NodeKind,
    /// The disk page backing this node.
    pub page: PageId,
    /// Parent node (`None` for the root).
    pub parent: Option<NodeId>,
    /// Level in the tree: 0 for leaves, increasing towards the root.
    pub level: u32,
}

impl Node {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(v) => v.len(),
            NodeKind::Dir(v) => v.len(),
        }
    }

    /// `true` if the node holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this is a data page.
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf(_))
    }

    /// Minimum bounding rectangle of all entries.
    pub fn mbr(&self) -> Rect {
        match &self.kind {
            NodeKind::Leaf(v) => v.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr)),
            NodeKind::Dir(v) => v.iter().fold(Rect::empty(), |acc, e| acc.union(&e.mbr)),
        }
    }

    /// Sum of the leaf payload bytes (0 for directory nodes).
    pub fn payload(&self) -> u64 {
        match &self.kind {
            NodeKind::Leaf(v) => v.iter().map(|e| e.payload as u64).sum(),
            NodeKind::Dir(_) => 0,
        }
    }

    /// Leaf entries (panics on a directory node).
    pub fn leaf_entries(&self) -> &[LeafEntry] {
        match &self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("not a leaf"),
        }
    }

    /// Mutable leaf entries (panics on a directory node).
    pub fn leaf_entries_mut(&mut self) -> &mut Vec<LeafEntry> {
        match &mut self.kind {
            NodeKind::Leaf(v) => v,
            NodeKind::Dir(_) => panic!("not a leaf"),
        }
    }

    /// Directory entries (panics on a leaf).
    pub fn dir_entries(&self) -> &[DirEntry] {
        match &self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("not a directory node"),
        }
    }

    /// Mutable directory entries (panics on a leaf).
    pub fn dir_entries_mut(&mut self) -> &mut Vec<DirEntry> {
        match &mut self.kind {
            NodeKind::Dir(v) => v,
            NodeKind::Leaf(_) => panic!("not a directory node"),
        }
    }
}

/// Slab of nodes with stable ids and O(1) reuse of freed slots.
///
/// Each slot holds its [`Node`] behind an [`Arc`], which makes the
/// store **copy-on-write**: [`Clone`] duplicates only the pointer
/// table (one refcount bump per live node), and the first
/// [`get_mut`](NodeStore::get_mut) on a shared node shadow-copies
/// exactly that node ([`Arc::make_mut`]). A cloned tree is therefore a
/// cheap consistent snapshot, and a writer working on the clone
/// materializes shadow pages only for the nodes it actually touches —
/// the mechanism behind the engine's non-blocking concurrent writers.
/// An unshared store pays one pointer indirection and no copies, so
/// the exclusive (`&mut`) update path behaves exactly as before.
#[derive(Clone, Debug, Default)]
pub struct NodeStore {
    nodes: Vec<Option<std::sync::Arc<Node>>>,
    free: Vec<u32>,
}

impl NodeStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a node, returning its id.
    pub fn insert(&mut self, node: Node) -> NodeId {
        let node = std::sync::Arc::new(node);
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Some(node);
                NodeId(i)
            }
            None => {
                self.nodes.push(Some(node));
                NodeId((self.nodes.len() - 1) as u32)
            }
        }
    }

    /// Remove a node, returning it (shadow-copied if a snapshot still
    /// shares it).
    pub fn remove(&mut self, id: NodeId) -> Node {
        let n = self.nodes[id.0 as usize]
            .take()
            .expect("node already removed");
        self.free.push(id.0);
        std::sync::Arc::try_unwrap(n).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Borrow a node.
    pub fn get(&self, id: NodeId) -> &Node {
        self.nodes[id.0 as usize].as_ref().expect("node removed")
    }

    /// `true` if `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.0 as usize)
            .map(|n| n.is_some())
            .unwrap_or(false)
    }

    /// Borrow a node mutably, shadow-copying it first if a snapshot
    /// still shares it (copy-on-write; no copy when unshared).
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node {
        std::sync::Arc::make_mut(self.nodes[id.0 as usize].as_mut().expect("node removed"))
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// `true` if no nodes are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over `(id, node)` pairs of live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i as u32), &**n)))
    }

    /// Number of live nodes whose storage is shared with another
    /// (cloned) store — i.e. not yet shadow-copied. Diagnostics for
    /// the copy-on-write tests.
    pub fn shared_nodes(&self) -> usize {
        self.nodes
            .iter()
            .flatten()
            .filter(|n| std::sync::Arc::strong_count(n) > 1)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use spatialdb_disk::{PageId, RegionId};

    fn leaf(entries: Vec<LeafEntry>) -> Node {
        Node {
            kind: NodeKind::Leaf(entries),
            page: PageId::new(RegionId(0), 0),
            parent: None,
            level: 0,
        }
    }

    fn e(x: f64, payload: u32) -> LeafEntry {
        LeafEntry::new(Rect::new(x, 0.0, x + 1.0, 1.0), ObjectId(x as u64), payload)
    }

    #[test]
    fn node_mbr_and_payload() {
        let n = leaf(vec![e(0.0, 100), e(5.0, 200)]);
        assert_eq!(n.mbr(), Rect::new(0.0, 0.0, 6.0, 1.0));
        assert_eq!(n.payload(), 300);
        assert_eq!(n.len(), 2);
        assert!(n.is_leaf());
    }

    #[test]
    fn empty_leaf_mbr_is_empty() {
        let n = leaf(vec![]);
        assert!(n.mbr().is_empty());
        assert!(n.is_empty());
    }

    #[test]
    fn store_insert_remove_reuse() {
        let mut s = NodeStore::new();
        let a = s.insert(leaf(vec![e(0.0, 1)]));
        let b = s.insert(leaf(vec![e(1.0, 1)]));
        assert_ne!(a, b);
        assert_eq!(s.len(), 2);
        s.remove(a);
        assert_eq!(s.len(), 1);
        let c = s.insert(leaf(vec![e(2.0, 1)]));
        assert_eq!(c, a); // slot reused
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut s = NodeStore::new();
        let a = s.insert(leaf(vec![e(0.0, 1)]));
        let b = s.insert(leaf(vec![e(1.0, 1)]));
        let snapshot = s.clone();
        assert_eq!(s.shared_nodes(), 2, "clone shares every node");

        // Mutating one node shadow-copies exactly that node.
        s.get_mut(a).leaf_entries_mut().push(e(2.0, 7));
        assert_eq!(s.shared_nodes(), 1);
        assert_eq!(snapshot.get(a).len(), 1, "snapshot unchanged");
        assert_eq!(s.get(a).len(), 2);
        assert_eq!(s.get(b).len(), snapshot.get(b).len());

        // Removing a shared node hands back a private copy.
        let removed = s.remove(b);
        assert_eq!(removed.len(), 1);
        assert!(snapshot.contains(b), "snapshot keeps its version");
    }

    #[test]
    #[should_panic(expected = "node already removed")]
    fn store_double_remove_panics() {
        let mut s = NodeStore::new();
        let a = s.insert(leaf(vec![]));
        s.remove(a);
        s.remove(a);
    }
}

//! Bottom-up (STR) bulk construction.
//!
//! Sort-tile-recursive \[LEL97\]: sort the entries by x-center, cut the
//! sorted sequence into vertical slices of `S · c` entries (`c` = leaf
//! capacity at the configured fill factor, `S = ⌈√⌈N/c⌉⌉`), sort each
//! slice by y-center and tile it into leaves of `c` entries, then pack
//! the directory bottom-up with the same fill factor. The result is a
//! fully packed R\*-tree whose data pages hold spatially adjacent
//! objects — the physical clustering the paper's organization
//! comparison measures — built in O(N log N) instead of N insertions.
//!
//! ## Determinism contract
//!
//! Every step is a pure function of the **entry multiset and the
//! [`TilingParams`]**:
//!
//! * [`sort_entries`] orders by `(x-center, y-center, oid)` — a total
//!   order (object ids are unique), so any stable or unstable sort,
//!   sequential or chunked-and-merged, produces the same sequence;
//! * [`slice_spans`] derives the slice boundaries from the entry count
//!   alone;
//! * [`tile_slice`] is a deterministic greedy cut of one slice.
//!
//! A parallel driver may therefore sort chunks on separate threads,
//! fan the slices out to workers, and concatenate the returned tiles in
//! slice order: the tiles — and the [`build_tree`] result — are
//! **identical at every thread count**.
//!
//! No I/O is charged here. [`build_tree`] reports the page runs of each
//! level ([`BulkBuild::level_runs`]); the storage layer decides what a
//! packed level's sequential write costs.

use crate::config::RTreeConfig;
use crate::entry::{DirEntry, LeafEntry};
use crate::node::{Node, NodeId, NodeKind, NodeStore};
use crate::tree::RStarTree;
use spatialdb_disk::{ExtentAllocator, PageId, PageRun, RegionId};

/// Default fill factor of STR-packed nodes. Below 1.0 so a bulk-loaded
/// tree absorbs some subsequent insertions before splitting, above the
/// ~70 % utilization insertion-built trees settle at.
pub const DEFAULT_STR_FILL: f64 = 0.9;

/// One packed data page: the leaf entries in their final order.
pub type Tile = Vec<LeafEntry>;

/// Capacity parameters of an STR build, derived from an
/// [`RTreeConfig`] and a fill factor.
#[derive(Clone, Debug, PartialEq)]
pub struct TilingParams {
    /// Entries packed per leaf (`⌊M · fill⌋`, at least 1).
    pub leaf_cap: usize,
    /// Children packed per directory node (`⌊M · fill⌋`, at least 2).
    pub dir_cap: usize,
    /// Byte payload limit per leaf (cluster: `Smax`; primary: the page
    /// capacity). A tile closes early when the next entry would push
    /// its payload past the limit.
    pub payload_limit: Option<u64>,
}

impl TilingParams {
    /// Derive the packing capacities from a tree configuration and a
    /// fill factor in `(0, 1]`.
    pub fn from_config(config: &RTreeConfig, fill: f64) -> Self {
        assert!(
            fill > 0.0 && fill <= 1.0,
            "STR fill factor must be in (0, 1], got {fill}"
        );
        let cap =
            ((config.max_entries as f64 * fill).floor() as usize).clamp(1, config.max_entries);
        TilingParams {
            leaf_cap: cap,
            dir_cap: cap.max(2),
            payload_limit: config.leaf_payload_limit,
        }
    }
}

/// Total order of the STR x-sort: `(x-center, y-center, oid)`. Object
/// ids are unique, so ties never depend on the input order.
fn str_cmp(a: &LeafEntry, b: &LeafEntry) -> std::cmp::Ordering {
    let ac = a.mbr.center();
    let bc = b.mbr.center();
    ac.x.total_cmp(&bc.x)
        .then(ac.y.total_cmp(&bc.y))
        .then(a.oid.cmp(&b.oid))
}

/// Sort entries into the global STR order (ascending x-center, ties by
/// y-center then object id).
pub fn sort_entries(entries: &mut [LeafEntry]) {
    entries.sort_unstable_by(str_cmp);
}

/// Merge pre-sorted chunks (each ordered by [`sort_entries`]) into one
/// globally sorted sequence. Because the comparator is a total order,
/// the result equals sorting the concatenation directly — this is the
/// reduction step of a parallel chunk sort.
pub fn merge_sorted_chunks(chunks: Vec<Vec<LeafEntry>>) -> Vec<LeafEntry> {
    let total = chunks.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors: Vec<(std::vec::IntoIter<LeafEntry>, Option<LeafEntry>)> = chunks
        .into_iter()
        .map(|c| {
            let mut it = c.into_iter();
            let head = it.next();
            (it, head)
        })
        .collect();
    loop {
        let mut best: Option<usize> = None;
        for (i, (_, head)) in cursors.iter().enumerate() {
            let Some(h) = head else { continue };
            match best {
                Some(b)
                    if str_cmp(cursors[b].1.as_ref().expect("best has head"), h)
                        != std::cmp::Ordering::Greater => {}
                _ => best = Some(i),
            }
        }
        let Some(b) = best else { break };
        let (it, head) = &mut cursors[b];
        out.push(head.take().expect("best has head"));
        *head = it.next();
    }
    out
}

/// Index ranges of the vertical slices of an `n`-entry sorted sequence:
/// `S = ⌈√⌈n/c⌉⌉` slices of `S · c` entries each (the last one ragged).
pub fn slice_spans(n: usize, params: &TilingParams) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let leaves = n.div_ceil(params.leaf_cap);
    let slices = (leaves as f64).sqrt().ceil() as usize;
    let per_slice = (slices * params.leaf_cap).max(1);
    (0..n.div_ceil(per_slice))
        .map(|i| i * per_slice..((i + 1) * per_slice).min(n))
        .collect()
}

/// Tile one x-slice: sort its entries by `(y-center, x-center, oid)`
/// and cut greedily into leaves of at most `leaf_cap` entries,
/// respecting the payload limit (an entry whose payload alone exceeds
/// the limit gets a tile of its own, like an oversized page in the
/// insertion path). When only the count bound applies, the ragged last
/// tile borrows trailing entries from its predecessor so every leaf
/// ends up at least half full.
///
/// # Panics
///
/// Panics on a non-finite MBR — a packed tree built over garbage
/// coordinates would silently mis-answer every query.
pub fn tile_slice(slice: &[LeafEntry], params: &TilingParams) -> Vec<Tile> {
    let mut entries: Vec<LeafEntry> = slice.to_vec();
    entries.sort_unstable_by(|a, b| {
        let ac = a.mbr.center();
        let bc = b.mbr.center();
        ac.y.total_cmp(&bc.y)
            .then(ac.x.total_cmp(&bc.x))
            .then(a.oid.cmp(&b.oid))
    });
    let mut tiles: Vec<Tile> = Vec::new();
    let mut cur: Tile = Vec::new();
    let mut cur_payload = 0u64;
    for e in entries {
        assert!(
            e.mbr.is_finite(),
            "bulk load requires finite MBRs (object {})",
            e.oid
        );
        let p = u64::from(e.payload);
        let over_payload = params
            .payload_limit
            .is_some_and(|limit| !cur.is_empty() && cur_payload + p > limit);
        if cur.len() >= params.leaf_cap || over_payload {
            tiles.push(std::mem::take(&mut cur));
            cur_payload = 0;
        }
        cur_payload += p;
        cur.push(e);
    }
    if !cur.is_empty() {
        tiles.push(cur);
    }
    if params.payload_limit.is_none() && tiles.len() >= 2 {
        let floor = params.leaf_cap.div_ceil(2);
        let last = tiles.len() - 1;
        while tiles[last].len() < floor && tiles[last - 1].len() > floor {
            let moved = tiles[last - 1].pop().expect("donor tile is non-empty");
            tiles[last].insert(0, moved);
        }
    }
    tiles
}

/// Sort and tile a full entry set sequentially: the reference pipeline
/// a parallel driver must reproduce tile-for-tile.
pub fn plan_tiles(mut entries: Vec<LeafEntry>, params: &TilingParams) -> Vec<Tile> {
    sort_entries(&mut entries);
    let mut tiles = Vec::new();
    for span in slice_spans(entries.len(), params) {
        tiles.extend(tile_slice(&entries[span], params));
    }
    tiles
}

/// Result of a bottom-up build.
#[derive(Debug)]
pub struct BulkBuild {
    /// The packed tree.
    pub tree: RStarTree,
    /// The page run of each level, leaves first. Pages are allocated
    /// strictly sequentially (leaves at offsets `0..L`, then each
    /// directory level), so every level is one consecutive run — the
    /// sequential-write pattern bulk loading is charged as.
    pub level_runs: Vec<PageRun>,
}

/// Pack `tiles` (in order) into a tree bottom-up. Leaves get node ids
/// `0..L` and page offsets `0..L` in tile order; each directory level
/// follows, packed `dir_cap` children per node with the same ragged-
/// tail balancing as the leaves. No I/O is charged.
pub fn build_tree(
    config: RTreeConfig,
    region: RegionId,
    tiles: Vec<Tile>,
    params: &TilingParams,
) -> BulkBuild {
    config.validate();
    if tiles.is_empty() {
        return BulkBuild {
            tree: RStarTree::new(config, region),
            level_runs: Vec::new(),
        };
    }
    let mut store = NodeStore::new();
    let mut pages = ExtentAllocator::new(region);
    let mut len = 0usize;
    let mut level_runs = Vec::new();
    let mut current: Vec<(NodeId, spatialdb_geom::Rect)> = tiles
        .into_iter()
        .map(|entries| {
            debug_assert!(!entries.is_empty(), "empty tile");
            len += entries.len();
            let node = Node {
                kind: NodeKind::Leaf(entries),
                page: pages.alloc_page(),
                parent: None,
                level: 0,
            };
            let mbr = node.mbr();
            (store.insert(node), mbr)
        })
        .collect();
    level_runs.push(PageRun::new(PageId::new(region, 0), current.len() as u64));
    let mut level = 0u32;
    let mut next_offset = current.len() as u64;
    while current.len() > 1 {
        level += 1;
        let groups = group_counts(current.len(), params.dir_cap);
        let mut parents = Vec::with_capacity(groups.len());
        let mut children = current.into_iter();
        for g in groups {
            let group: Vec<(NodeId, spatialdb_geom::Rect)> = children.by_ref().take(g).collect();
            let entries: Vec<DirEntry> = group
                .iter()
                .map(|&(child, mbr)| DirEntry { mbr, child })
                .collect();
            let node = Node {
                kind: NodeKind::Dir(entries),
                page: pages.alloc_page(),
                parent: None,
                level,
            };
            let mbr = node.mbr();
            let id = store.insert(node);
            for (child, _) in &group {
                store.get_mut(*child).parent = Some(id);
            }
            parents.push((id, mbr));
        }
        level_runs.push(PageRun::new(
            PageId::new(region, next_offset),
            parents.len() as u64,
        ));
        next_offset += parents.len() as u64;
        current = parents;
    }
    let root = current[0].0;
    BulkBuild {
        tree: RStarTree::from_parts(config, store, root, pages, len),
        level_runs,
    }
}

/// Children per parent when packing `n` nodes `cap` at a time: full
/// groups, with the ragged tail rebalanced against its predecessor so
/// no directory node falls below half of `cap` (unless `n < cap`).
fn group_counts(n: usize, cap: usize) -> Vec<usize> {
    debug_assert!(cap >= 2);
    let parents = n.div_ceil(cap);
    let mut counts = vec![cap; parents];
    let tail = n - cap * (parents - 1);
    counts[parents - 1] = tail;
    if parents >= 2 {
        let floor = cap.div_ceil(2);
        if tail < floor {
            let move_over = floor - tail;
            counts[parents - 2] -= move_over;
            counts[parents - 1] += move_over;
        }
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), n);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::ObjectId;
    use crate::validate::check_invariants;
    use spatialdb_geom::Rect;

    fn entries(n: u64, payload: u32) -> Vec<LeafEntry> {
        (0..n)
            .map(|i| {
                let x = ((i * 37) % 101) as f64 / 101.0;
                let y = ((i * 61) % 97) as f64 / 97.0;
                LeafEntry::new(Rect::new(x, y, x + 0.01, y + 0.01), ObjectId(i), payload)
            })
            .collect()
    }

    fn region() -> RegionId {
        spatialdb_disk::Disk::with_defaults().create_region("bulk:test")
    }

    #[test]
    fn packed_tree_is_valid_and_full() {
        let config = RTreeConfig::paper_default(4096);
        let params = TilingParams::from_config(&config, 0.9);
        let tiles = plan_tiles(entries(5000, 0), &params);
        let build = build_tree(config, region(), tiles, &params);
        check_invariants(&build.tree).unwrap();
        assert_eq!(build.tree.len(), 5000);
        // Every leaf at least half the target, all but the slice tails
        // exactly at it.
        let full = build
            .tree
            .leaves()
            .filter(|(_, l)| l.len() == params.leaf_cap)
            .count();
        for (_, leaf) in build.tree.leaves() {
            assert!(leaf.len() >= params.leaf_cap.div_ceil(2), "{}", leaf.len());
        }
        assert!(
            full * 10 >= build.tree.num_leaves() * 8,
            "only {full}/{} leaves fully packed",
            build.tree.num_leaves()
        );
        // Levels cover the page space contiguously from offset 0.
        let total: u64 = build.level_runs.iter().map(|r| r.len).sum();
        assert_eq!(total, build.tree.num_nodes() as u64);
        assert_eq!(build.level_runs[0].start.offset, 0);
    }

    #[test]
    fn payload_limit_respected() {
        let config = RTreeConfig::cluster(4096, 8 * 1024);
        let params = TilingParams::from_config(&config, 1.0);
        let tiles = plan_tiles(entries(800, 700), &params);
        for t in &tiles {
            let payload: u64 = t.iter().map(|e| u64::from(e.payload)).sum();
            assert!(payload <= 8 * 1024);
        }
        let build = build_tree(config, region(), tiles, &params);
        check_invariants(&build.tree).unwrap();
        assert_eq!(build.tree.len(), 800);
    }

    #[test]
    fn oversized_entry_gets_its_own_tile() {
        let config = RTreeConfig::primary(4096);
        let params = TilingParams::from_config(&config, 1.0);
        let mut es = entries(50, 600);
        es[7].payload = 60_000; // larger than the page payload limit
        let tiles = plan_tiles(es, &params);
        let big: Vec<&Tile> = tiles
            .iter()
            .filter(|t| t.iter().any(|e| e.payload == 60_000))
            .collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].len(), 1, "oversized entry must sit alone");
        let build = build_tree(config, region(), tiles, &params);
        check_invariants(&build.tree).unwrap();
    }

    #[test]
    fn chunked_sort_merges_to_global_order() {
        let es = entries(3000, 0);
        let mut reference = es.clone();
        sort_entries(&mut reference);
        for parts in [2usize, 3, 8] {
            let per = es.len().div_ceil(parts);
            let chunks: Vec<Vec<LeafEntry>> = es
                .chunks(per)
                .map(|c| {
                    let mut v = c.to_vec();
                    sort_entries(&mut v);
                    v
                })
                .collect();
            assert_eq!(merge_sorted_chunks(chunks), reference, "{parts} chunks");
        }
    }

    #[test]
    fn tiling_is_a_pure_function_of_the_sorted_sequence() {
        let config = RTreeConfig::paper_default(4096);
        let params = TilingParams::from_config(&config, 0.9);
        let mut shuffled = entries(2000, 0);
        shuffled.reverse();
        assert_eq!(
            plan_tiles(entries(2000, 0), &params),
            plan_tiles(shuffled, &params)
        );
        // Slice-by-slice tiling concatenates to the sequential plan.
        let mut sorted = entries(2000, 0);
        sort_entries(&mut sorted);
        let mut concat = Vec::new();
        for span in slice_spans(sorted.len(), &params) {
            concat.extend(tile_slice(&sorted[span], &params));
        }
        assert_eq!(concat, plan_tiles(entries(2000, 0), &params));
    }

    #[test]
    fn single_tile_tree_has_leaf_root() {
        let config = RTreeConfig::paper_default(4096);
        let params = TilingParams::from_config(&config, 1.0);
        let tiles = plan_tiles(entries(10, 0), &params);
        assert_eq!(tiles.len(), 1);
        let build = build_tree(config, region(), tiles, &params);
        check_invariants(&build.tree).unwrap();
        assert_eq!(build.tree.height(), 1);
        assert_eq!(build.tree.len(), 10);
    }

    #[test]
    fn empty_build_is_an_empty_tree() {
        let config = RTreeConfig::paper_default(4096);
        let params = TilingParams::from_config(&config, 1.0);
        let build = build_tree(config, region(), Vec::new(), &params);
        check_invariants(&build.tree).unwrap();
        assert_eq!(build.tree.len(), 0);
        assert!(build.level_runs.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite MBR")]
    fn non_finite_mbr_rejected() {
        let config = RTreeConfig::paper_default(4096);
        let params = TilingParams::from_config(&config, 1.0);
        let mut es = entries(10, 0);
        es[3].mbr = Rect {
            xmin: f64::NAN,
            ymin: 0.0,
            xmax: f64::NAN,
            ymax: 1.0,
        };
        plan_tiles(es, &params);
    }
}

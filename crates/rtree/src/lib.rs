//! # spatialdb-rtree
//!
//! A from-scratch R\*-tree (\[BKSS90\]: Beckmann, Kriegel, Schneider,
//! Seeger, SIGMOD 1990) — the spatial access method at the heart of all
//! three organization models of Brinkhoff & Kriegel, VLDB 1994 (§4.1).
//!
//! The implementation follows the original paper:
//!
//! * **ChooseSubtree** descends into the child with the least *overlap
//!   enlargement* at the leaf level (with the top-32 area-enlargement
//!   prefilter) and the least *area enlargement* at directory levels;
//! * **Split** first chooses the split *axis* by the minimum sum of
//!   margins over all candidate distributions, then the *distribution*
//!   with minimal overlap (ties: minimal area);
//! * **Forced reinsert**: on the first overflow of a node on each level
//!   per insertion, the 30 % of entries farthest from the node centre are
//!   removed and reinserted ("close reinsert") instead of splitting.
//!
//! Two extensions required by the cluster organization (§4.2.1 of the
//! VLDB'94 paper):
//!
//! * forced reinsert can be **disabled at the data-page level**
//!   ([`RTreeConfig::leaf_reinsert_enabled`]), because reinsertion would
//!   physically move objects between cluster units;
//! * leaves can carry a **byte payload limit**
//!   ([`RTreeConfig::leaf_payload_limit`]): a leaf overflows when its
//!   entry count exceeds `M` *or* its payload exceeds the limit. With the
//!   limit set to `Smax` this is exactly the *cluster split*; with the
//!   limit set to the page capacity it models the primary organization's
//!   byte-constrained data pages.
//!
//! The tree charges every node access through the [`io::NodeIo`] hook, so
//! the same code runs both as a pure in-memory index (tests) and against
//! the simulated disk (experiments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod config;
pub mod entry;
pub mod io;
pub mod node;
pub mod query;
pub mod split;
pub mod tree;
pub mod validate;

pub use bulk::{BulkBuild, Tile, TilingParams, DEFAULT_STR_FILL};
pub use config::RTreeConfig;
pub use entry::{DirEntry, LeafEntry, ObjectId};
pub use io::{NoIo, NodeIo};
pub use node::{NodeId, NodeKind};
pub use tree::{InsertOutcome, LeafSplit, RStarTree};

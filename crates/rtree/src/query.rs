//! Point and window queries over the R\*-tree (filter step).
//!
//! §4.1 of the paper: *"Let S be a query rectangle of a window query. The
//! query is performed by starting in the root and computing all entries
//! whose rectangle intersects S. For these entries, the corresponding
//! child nodes are read into main memory and the query process is
//! repeated, unless the node in question is a leaf node."*
//!
//! The queries here implement the *filter* step (\[Ore89\]): they return
//! candidate entries / data pages based on MBRs. The *refinement* step
//! (exact geometry test) is the organization models' job, because it is
//! what requires fetching the exact object representations from disk.

use crate::entry::LeafEntry;
use crate::io::NodeIo;
use crate::node::{NodeId, NodeKind};
use crate::tree::RStarTree;
use spatialdb_geom::{Point, Rect};

impl RStarTree {
    /// Window query, filter step: all leaf entries whose MBR intersects
    /// `window`. Visited node pages are charged to `io`.
    pub fn window_entries(&self, window: &Rect, io: &mut impl NodeIo) -> Vec<LeafEntry> {
        let mut out = Vec::new();
        self.window_entries_into(window, io, &mut out);
        out
    }

    /// [`window_entries`](RStarTree::window_entries) appending into a
    /// caller-supplied scratch buffer instead of allocating a fresh `Vec`
    /// per call — the form the refinement hot path iterates with. `out`
    /// is cleared first.
    pub fn window_entries_into(
        &self,
        window: &Rect,
        io: &mut impl NodeIo,
        out: &mut Vec<LeafEntry>,
    ) {
        out.clear();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            io.read(node.page);
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    out.extend(entries.iter().filter(|e| e.mbr.intersects(window)).copied());
                }
                NodeKind::Dir(entries) => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbr.intersects(window))
                            .map(|e| e.child),
                    );
                }
            }
        }
    }

    /// Window query over data pages: the ids of all leaves that contain at
    /// least one entry whose MBR intersects `window`, each paired with its
    /// matching entries.
    ///
    /// This is the access pattern of the cluster organization (§4.2.2):
    /// each qualifying data page maps to one cluster unit that the query
    /// techniques then decide how to transfer.
    pub fn window_leaves(
        &self,
        window: &Rect,
        io: &mut impl NodeIo,
    ) -> Vec<(NodeId, Vec<LeafEntry>)> {
        let mut out = Vec::new();
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            let node = self.node(id);
            io.read(node.page);
            match &node.kind {
                NodeKind::Leaf(entries) => {
                    let hits: Vec<LeafEntry> = entries
                        .iter()
                        .filter(|e| e.mbr.intersects(window))
                        .copied()
                        .collect();
                    if !hits.is_empty() {
                        out.push((id, hits));
                    }
                }
                NodeKind::Dir(entries) => {
                    stack.extend(
                        entries
                            .iter()
                            .filter(|e| e.mbr.intersects(window))
                            .map(|e| e.child),
                    );
                }
            }
        }
        out
    }

    /// Point query, filter step: all leaf entries whose MBR contains `p`.
    pub fn point_entries(&self, p: &Point, io: &mut impl NodeIo) -> Vec<LeafEntry> {
        let window = Rect::new(p.x, p.y, p.x, p.y);
        self.window_entries(&window, io)
    }

    /// [`point_entries`](RStarTree::point_entries) appending into a
    /// caller-supplied scratch buffer (cleared first).
    pub fn point_entries_into(&self, p: &Point, io: &mut impl NodeIo, out: &mut Vec<LeafEntry>) {
        let window = Rect::new(p.x, p.y, p.x, p.y);
        self.window_entries_into(&window, io, out)
    }

    /// Number of node pages a window query would read (filter-step I/O),
    /// without charging anything.
    pub fn window_node_count(&self, window: &Rect) -> usize {
        let mut count = 0usize;
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            count += 1;
            if let NodeKind::Dir(entries) = &self.node(id).kind {
                stack.extend(
                    entries
                        .iter()
                        .filter(|e| e.mbr.intersects(window))
                        .map(|e| e.child),
                );
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::entry::ObjectId;
    use crate::io::{CountingIo, NoIo};
    use spatialdb_disk::Disk;

    fn build_grid(n: u64) -> RStarTree {
        let disk = Disk::with_defaults();
        let mut t = RStarTree::new(
            RTreeConfig {
                max_entries: 8,
                min_fill_ratio: 0.4,
                reinsert_fraction: 0.3,
                leaf_reinsert_enabled: true,
                leaf_payload_limit: None,
            },
            disk.create_region("t"),
        );
        for i in 0..n * n {
            let x = (i % n) as f64;
            let y = (i / n) as f64;
            t.insert(
                LeafEntry::new(Rect::new(x, y, x + 0.5, y + 0.5), ObjectId(i), 0),
                &mut NoIo,
            );
        }
        t
    }

    #[test]
    fn window_query_finds_exactly_the_overlapping_entries() {
        let t = build_grid(10);
        let w = Rect::new(2.0, 2.0, 4.2, 3.2);
        let mut found: Vec<u64> = t
            .window_entries(&w, &mut NoIo)
            .iter()
            .map(|e| e.oid.0)
            .collect();
        found.sort_unstable();
        // Brute force reference.
        let mut expected = Vec::new();
        for i in 0..100u64 {
            let x = (i % 10) as f64;
            let y = (i / 10) as f64;
            if Rect::new(x, y, x + 0.5, y + 0.5).intersects(&w) {
                expected.push(i);
            }
        }
        assert_eq!(found, expected);
    }

    #[test]
    fn point_query_contains_semantics() {
        let t = build_grid(10);
        // Point inside cell (3,4).
        let hits = t.point_entries(&Point::new(3.25, 4.25), &mut NoIo);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].oid, ObjectId(43));
        // Point in the gap between cells: no hit.
        let miss = t.point_entries(&Point::new(3.75, 4.25), &mut NoIo);
        assert!(miss.is_empty());
    }

    #[test]
    fn empty_window_query() {
        let t = build_grid(5);
        let out = t.window_entries(&Rect::new(100.0, 100.0, 101.0, 101.0), &mut NoIo);
        assert!(out.is_empty());
    }

    #[test]
    fn whole_space_window_returns_everything() {
        let t = build_grid(7);
        let out = t.window_entries(&Rect::new(-1.0, -1.0, 100.0, 100.0), &mut NoIo);
        assert_eq!(out.len(), 49);
    }

    #[test]
    fn window_leaves_cover_window_entries() {
        let t = build_grid(10);
        let w = Rect::new(1.0, 1.0, 6.3, 5.1);
        let per_leaf = t.window_leaves(&w, &mut NoIo);
        let total: usize = per_leaf.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, t.window_entries(&w, &mut NoIo).len());
        // Every reported leaf really holds its reported entries.
        for (leaf, hits) in &per_leaf {
            let node_entries = t.node(*leaf).leaf_entries();
            for h in hits {
                assert!(node_entries.iter().any(|e| e.oid == h.oid));
            }
        }
    }

    #[test]
    fn selective_query_reads_fewer_nodes() {
        let t = build_grid(20);
        let mut io_small = CountingIo::default();
        t.window_entries(&Rect::new(5.0, 5.0, 5.4, 5.4), &mut io_small);
        let mut io_big = CountingIo::default();
        t.window_entries(&Rect::new(0.0, 0.0, 20.0, 20.0), &mut io_big);
        assert!(io_small.reads < io_big.reads);
        assert_eq!(io_big.reads as usize, t.num_nodes());
    }

    #[test]
    fn into_variants_reuse_scratch_and_match() {
        let t = build_grid(10);
        let w = Rect::new(2.0, 2.0, 4.2, 3.2);
        let mut scratch = Vec::new();
        t.window_entries_into(&w, &mut NoIo, &mut scratch);
        assert_eq!(scratch, t.window_entries(&w, &mut NoIo));
        // Reuse across calls: the buffer is cleared, not appended to.
        t.point_entries_into(&Point::new(3.25, 4.25), &mut NoIo, &mut scratch);
        assert_eq!(scratch, t.point_entries(&Point::new(3.25, 4.25), &mut NoIo));
    }

    #[test]
    fn window_node_count_matches_charged_reads() {
        let t = build_grid(12);
        let w = Rect::new(2.0, 3.0, 8.0, 7.0);
        let mut io = CountingIo::default();
        t.window_entries(&w, &mut io);
        assert_eq!(io.reads as usize, t.window_node_count(&w));
    }
}

//! Node I/O hooks.
//!
//! The tree reports every node access through a [`NodeIo`] implementation.
//! Experiments pass a [`spatialdb_disk::BufferPool`] so that node visits
//! become (buffered) disk requests; unit tests and in-memory use pass
//! [`NoIo`].

use spatialdb_disk::{BufferPool, PageId, ShardedPool};

/// Page size used to derive node capacities (the paper's 4 KB).
pub const PAGE_BYTES: usize = spatialdb_disk::PAGE_SIZE;

/// Receiver of node access events.
pub trait NodeIo {
    /// A node page is read (descending the tree, queries).
    fn read(&mut self, page: PageId);
    /// An existing node page is modified (entry added/removed, MBR
    /// adjusted). Implies a read if the page is not buffered.
    fn modify(&mut self, page: PageId);
    /// A freshly allocated node page is written for the first time
    /// (no prior read needed).
    fn fresh(&mut self, page: PageId);
    /// A node page is released (node deleted).
    fn release(&mut self, page: PageId);
}

/// No-op I/O hook: the tree runs as a pure in-memory index.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoIo;

impl NodeIo for NoIo {
    #[inline]
    fn read(&mut self, _page: PageId) {}
    #[inline]
    fn modify(&mut self, _page: PageId) {}
    #[inline]
    fn fresh(&mut self, _page: PageId) {}
    #[inline]
    fn release(&mut self, _page: PageId) {}
}

impl NodeIo for BufferPool {
    fn read(&mut self, page: PageId) {
        self.read_page(page);
    }

    fn modify(&mut self, page: PageId) {
        self.update_page(page);
    }

    fn fresh(&mut self, page: PageId) {
        self.write_page(page);
    }

    fn release(&mut self, page: PageId) {
        self.buffer_mut().remove(&page);
    }
}

/// The sharded pool locks internally, so the hook works through a
/// shared reference — pass `&mut pool.as_ref()` from an
/// `Arc<ShardedPool>`.
impl NodeIo for &ShardedPool {
    fn read(&mut self, page: PageId) {
        self.read_page(page);
    }

    fn modify(&mut self, page: PageId) {
        self.update_page(page);
    }

    fn fresh(&mut self, page: PageId) {
        self.write_page(page);
    }

    fn release(&mut self, page: PageId) {
        self.remove_page(&page);
    }
}

/// I/O hook that counts accesses (tests and diagnostics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingIo {
    /// Node page reads.
    pub reads: u64,
    /// Node page modifications.
    pub modifies: u64,
    /// Fresh node page writes.
    pub fresh_writes: u64,
    /// Node page releases.
    pub releases: u64,
}

impl NodeIo for CountingIo {
    fn read(&mut self, _page: PageId) {
        self.reads += 1;
    }

    fn modify(&mut self, _page: PageId) {
        self.modifies += 1;
    }

    fn fresh(&mut self, _page: PageId) {
        self.fresh_writes += 1;
    }

    fn release(&mut self, _page: PageId) {
        self.releases += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb_disk::{Disk, RegionId};

    #[test]
    fn counting_io_counts() {
        let mut c = CountingIo::default();
        let p = PageId::new(RegionId(0), 0);
        c.read(p);
        c.read(p);
        c.modify(p);
        c.fresh(p);
        c.release(p);
        assert_eq!(c.reads, 2);
        assert_eq!(c.modifies, 1);
        assert_eq!(c.fresh_writes, 1);
        assert_eq!(c.releases, 1);
    }

    #[test]
    fn buffer_pool_hook_charges_disk() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let mut pool = BufferPool::new(disk.clone(), 8);
        let p = PageId::new(r, 0);
        NodeIo::read(&mut pool, p); // miss
        NodeIo::read(&mut pool, p); // hit
        NodeIo::modify(&mut pool, p); // buffered → dirty only
        assert_eq!(disk.stats().read_requests, 1);
        NodeIo::fresh(&mut pool, PageId::new(r, 1));
        assert_eq!(disk.stats().write_requests, 0); // deferred until flush
        pool.flush();
        assert_eq!(disk.stats().write_requests, 1); // pages 0,1 consecutive
        assert_eq!(disk.stats().pages_written, 2);
    }
}

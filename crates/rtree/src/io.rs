//! Node I/O hooks.
//!
//! The tree reports every node access through a [`NodeIo`] implementation.
//! Experiments pass a [`spatialdb_disk::BufferPool`] so that node visits
//! become (buffered) disk requests; unit tests and in-memory use pass
//! [`NoIo`].

use spatialdb_disk::{BufferPool, PageId, ShardedPool};

/// Page size used to derive node capacities (the paper's 4 KB).
pub const PAGE_BYTES: usize = spatialdb_disk::PAGE_SIZE;

/// Receiver of node access events.
pub trait NodeIo {
    /// A node page is read (descending the tree, queries).
    fn read(&mut self, page: PageId);
    /// An existing node page is modified (entry added/removed, MBR
    /// adjusted). Implies a read if the page is not buffered.
    fn modify(&mut self, page: PageId);
    /// A freshly allocated node page is written for the first time
    /// (no prior read needed).
    fn fresh(&mut self, page: PageId);
    /// A node page is released (node deleted).
    fn release(&mut self, page: PageId);
}

/// No-op I/O hook: the tree runs as a pure in-memory index.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoIo;

impl NodeIo for NoIo {
    #[inline]
    fn read(&mut self, _page: PageId) {}
    #[inline]
    fn modify(&mut self, _page: PageId) {}
    #[inline]
    fn fresh(&mut self, _page: PageId) {}
    #[inline]
    fn release(&mut self, _page: PageId) {}
}

impl NodeIo for BufferPool {
    fn read(&mut self, page: PageId) {
        self.read_page(page);
    }

    fn modify(&mut self, page: PageId) {
        self.update_page(page);
    }

    fn fresh(&mut self, page: PageId) {
        self.write_page(page);
    }

    fn release(&mut self, page: PageId) {
        self.buffer_mut().remove(&page);
    }
}

/// The sharded pool locks internally, so the hook works through a
/// shared reference — pass `&mut pool.as_ref()` from an
/// `Arc<ShardedPool>`.
impl NodeIo for &ShardedPool {
    fn read(&mut self, page: PageId) {
        self.read_page(page);
    }

    fn modify(&mut self, page: PageId) {
        self.update_page(page);
    }

    fn fresh(&mut self, page: PageId) {
        self.write_page(page);
    }

    fn release(&mut self, page: PageId) {
        self.remove_page(&page);
    }
}

/// Node I/O hook that **submits** read misses to the disk arm instead
/// of charging them at the call site — the tree's batched read path for
/// the overlapped-I/O subsystem.
///
/// Reads go through
/// [`ShardedPool::read_page_submitted`](spatialdb_disk::ShardedPool::read_page_submitted):
/// hits touch the buffer as usual, misses enqueue a request on the
/// pool's disk arm and record its id in [`SubmitIo::submitted`]. The
/// caller services them via
/// [`Disk::complete_next`](spatialdb_disk::Disk::complete_next) /
/// [`Disk::drain_arm`](spatialdb_disk::Disk::drain_arm) — completing
/// after every submission (queue depth 1) charges byte-identically to
/// the synchronous hook. Structural writes (`modify`/`fresh`/`release`)
/// keep the synchronous path: tree updates are serialized by `&mut self`
/// anyway and are not part of the query-latency story.
#[derive(Debug)]
pub struct SubmitIo<'a> {
    pool: &'a ShardedPool,
    /// Request ids of the submitted (miss) reads, in issue order.
    pub submitted: Vec<u64>,
}

impl<'a> SubmitIo<'a> {
    /// Create a submitting hook over `pool`.
    pub fn new(pool: &'a ShardedPool) -> Self {
        SubmitIo {
            pool,
            submitted: Vec::new(),
        }
    }
}

impl NodeIo for SubmitIo<'_> {
    fn read(&mut self, page: PageId) {
        if let Some(id) = self.pool.read_page_submitted(page) {
            self.submitted.push(id);
        }
    }

    fn modify(&mut self, page: PageId) {
        self.pool.update_page(page);
    }

    fn fresh(&mut self, page: PageId) {
        self.pool.write_page(page);
    }

    fn release(&mut self, page: PageId) {
        self.pool.remove_page(&page);
    }
}

/// I/O hook that counts accesses (tests and diagnostics).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingIo {
    /// Node page reads.
    pub reads: u64,
    /// Node page modifications.
    pub modifies: u64,
    /// Fresh node page writes.
    pub fresh_writes: u64,
    /// Node page releases.
    pub releases: u64,
}

impl NodeIo for CountingIo {
    fn read(&mut self, _page: PageId) {
        self.reads += 1;
    }

    fn modify(&mut self, _page: PageId) {
        self.modifies += 1;
    }

    fn fresh(&mut self, _page: PageId) {
        self.fresh_writes += 1;
    }

    fn release(&mut self, _page: PageId) {
        self.releases += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RTreeConfig;
    use crate::entry::{LeafEntry, ObjectId};
    use crate::tree::RStarTree;
    use spatialdb_disk::{ArmPolicy, Disk, DiskHandle, RegionId};
    use spatialdb_geom::Rect;

    #[test]
    fn counting_io_counts() {
        let mut c = CountingIo::default();
        let p = PageId::new(RegionId(0), 0);
        c.read(p);
        c.read(p);
        c.modify(p);
        c.fresh(p);
        c.release(p);
        assert_eq!(c.reads, 2);
        assert_eq!(c.modifies, 1);
        assert_eq!(c.fresh_writes, 1);
        assert_eq!(c.releases, 1);
    }

    #[test]
    fn submit_io_defers_read_charges_to_the_arm() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let pool = ShardedPool::new(disk.clone(), 8);
        let mut io = SubmitIo::new(&pool);
        let p = PageId::new(r, 0);
        NodeIo::read(&mut io, p); // miss → submitted, not yet charged
        NodeIo::read(&mut io, p); // buffered → hit, nothing submitted
        assert_eq!(io.submitted.len(), 1);
        assert_eq!(disk.stats().read_requests, 0);
        let done = disk.drain_arm();
        assert_eq!(done.len(), 1);
        assert_eq!(disk.stats().read_requests, 1);
        // Structural writes stay synchronous (buffered dirty here).
        NodeIo::modify(&mut io, p);
        assert_eq!(disk.stats().write_requests, 0);
        assert_eq!(disk.arm_pending(), 0);
    }

    /// The tree's batched read path: a cold window walk through
    /// `SubmitIo` + FCFS drain charges exactly what the synchronous
    /// pool hook charges, and finds the same entries.
    #[test]
    fn tree_walk_submitted_mirrors_sync_walk() {
        fn build(disk: &DiskHandle) -> (RStarTree, ShardedPool) {
            let region = disk.create_region("t");
            let pool = ShardedPool::new(disk.clone(), 256);
            let mut t = RStarTree::new(
                RTreeConfig {
                    max_entries: 8,
                    min_fill_ratio: 0.4,
                    reinsert_fraction: 0.3,
                    leaf_reinsert_enabled: true,
                    leaf_payload_limit: None,
                },
                region,
            );
            for i in 0..400u64 {
                let x = (i % 20) as f64;
                let y = (i / 20) as f64;
                t.insert(
                    LeafEntry::new(Rect::new(x, y, x + 0.5, y + 0.5), ObjectId(i), 0),
                    &mut (&pool),
                );
            }
            pool.flush();
            pool.invalidate_all();
            disk.reset_stats();
            (t, pool)
        }
        let sync_disk = Disk::with_defaults();
        let arm_disk = Disk::with_defaults();
        arm_disk.set_arm_policy(ArmPolicy::Fcfs);
        let (sync_tree, sync_pool) = build(&sync_disk);
        let (arm_tree, arm_pool) = build(&arm_disk);
        let window = Rect::new(3.0, 3.0, 11.0, 11.0);
        let sync_hits = sync_tree.window_entries(&window, &mut (&sync_pool));
        let mut io = SubmitIo::new(&arm_pool);
        let arm_hits = arm_tree.window_entries(&window, &mut io);
        assert_eq!(sync_hits, arm_hits);
        assert!(!io.submitted.is_empty(), "cold walk must read nodes");
        let done = arm_disk.drain_arm();
        assert_eq!(done.len(), io.submitted.len());
        assert_eq!(sync_disk.stats(), arm_disk.stats());
    }

    #[test]
    fn buffer_pool_hook_charges_disk() {
        let disk = Disk::with_defaults();
        let r = disk.create_region("tree");
        let mut pool = BufferPool::new(disk.clone(), 8);
        let p = PageId::new(r, 0);
        NodeIo::read(&mut pool, p); // miss
        NodeIo::read(&mut pool, p); // hit
        NodeIo::modify(&mut pool, p); // buffered → dirty only
        assert_eq!(disk.stats().read_requests, 1);
        NodeIo::fresh(&mut pool, PageId::new(r, 1));
        assert_eq!(disk.stats().write_requests, 0); // deferred until flush
        pool.flush();
        assert_eq!(disk.stats().write_requests, 1); // pages 0,1 consecutive
        assert_eq!(disk.stats().pages_written, 2);
    }
}

//! The R\*-tree proper: structure, insertion with forced reinsert,
//! splitting, and deletion.

use crate::config::RTreeConfig;
use crate::entry::{DirEntry, LeafEntry, ObjectId};
use crate::io::NodeIo;
use crate::node::{Node, NodeId, NodeKind, NodeStore};
use crate::split::{distribution_rects, rstar_split};
use spatialdb_disk::{ExtentAllocator, PageId, RegionId};
use spatialdb_geom::Rect;

/// A data-page split, reported to the storage layer.
///
/// The cluster organization reacts to this event by splitting the
/// corresponding cluster unit into exactly two units (§4.2.2 step 4),
/// distributing the objects according to the reported entry groups.
#[derive(Clone, Debug)]
pub struct LeafSplit {
    /// The overflowing data page (keeps `old_oids`).
    pub old: NodeId,
    /// The newly created data page (receives `new_oids`).
    pub new: NodeId,
    /// Objects remaining in `old` after the split.
    pub old_oids: Vec<ObjectId>,
    /// Objects moved to `new`.
    pub new_oids: Vec<ObjectId>,
}

/// Everything the storage layer needs to know about one insertion.
#[derive(Clone, Debug, Default)]
pub struct InsertOutcome {
    /// The data page the new entry was placed into (before any split).
    pub leaf: Option<NodeId>,
    /// Data-page splits in the order they occurred.
    pub leaf_splits: Vec<LeafSplit>,
    /// Objects whose entries were moved between data pages by forced
    /// reinsert (empty when leaf reinsert is disabled). Pairs of
    /// `(object, data page it landed in)`.
    pub leaf_reinserts: Vec<(ObjectId, NodeId)>,
}

/// Everything the storage layer needs to know about one deletion.
#[derive(Clone, Debug, Default)]
pub struct DeleteOutcome {
    /// `true` if the entry was found and removed.
    pub removed: bool,
    /// Data page the entry was removed from.
    pub leaf: Option<NodeId>,
    /// Objects relocated to other data pages by tree condensation.
    pub leaf_reinserts: Vec<(ObjectId, NodeId)>,
    /// Data-page splits caused by re-insertions during condensation.
    pub leaf_splits: Vec<LeafSplit>,
}

/// Per-insertion context: which levels already performed a forced
/// reinsert, and the accumulated storage-layer events.
#[derive(Default)]
struct InsertCtx {
    reinserted_levels: u64,
    leaf_splits: Vec<LeafSplit>,
    leaf_reinserts: Vec<(ObjectId, NodeId)>,
}

impl InsertCtx {
    fn level_done(&self, level: u32) -> bool {
        self.reinserted_levels & (1 << level.min(63)) != 0
    }

    fn mark_level(&mut self, level: u32) {
        self.reinserted_levels |= 1 << level.min(63);
    }
}

enum AnyEntry {
    Leaf(LeafEntry),
    Dir(DirEntry),
}

impl AnyEntry {
    fn rect(&self) -> Rect {
        match self {
            AnyEntry::Leaf(e) => e.mbr,
            AnyEntry::Dir(e) => e.mbr,
        }
    }
}

/// The R\*-tree. See the crate documentation for the algorithmic
/// provenance.
///
/// Cloning a tree is cheap: the node store is copy-on-write (see
/// [`NodeStore`]), so a clone shares every node with the original and
/// either side shadow-copies a node only when it first mutates it.
/// This is how the storage organizations take consistent snapshots
/// for the non-blocking read path.
#[derive(Clone, Debug)]
pub struct RStarTree {
    config: RTreeConfig,
    store: NodeStore,
    root: NodeId,
    pages: ExtentAllocator,
    len: usize,
}

impl RStarTree {
    /// Create an empty tree whose nodes live in `region` of the simulated
    /// disk.
    pub fn new(config: RTreeConfig, region: RegionId) -> Self {
        config.validate();
        let mut pages = ExtentAllocator::new(region);
        let mut store = NodeStore::new();
        let root = store.insert(Node {
            kind: NodeKind::Leaf(Vec::new()),
            page: pages.alloc_page(),
            parent: None,
            level: 0,
        });
        RStarTree {
            config,
            store,
            root,
            pages,
            len: 0,
        }
    }

    /// Assemble a tree from pre-built parts (the bottom-up bulk loader
    /// in [`crate::bulk`]). The caller guarantees the structural
    /// invariants; debug builds re-check them in `bulk`'s tests.
    pub(crate) fn from_parts(
        config: RTreeConfig,
        store: NodeStore,
        root: NodeId,
        pages: ExtentAllocator,
        len: usize,
    ) -> Self {
        RStarTree {
            config,
            store,
            root,
            pages,
            len,
        }
    }

    /// The disk region the tree's nodes are allocated in.
    #[inline]
    pub fn region(&self) -> RegionId {
        self.pages.region()
    }

    /// The configuration.
    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Number of stored leaf entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree stores no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Height of the tree (1 for a leaf-only tree).
    pub fn height(&self) -> u32 {
        self.store.get(self.root).level + 1
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        self.store.get(id)
    }

    /// Disk page of a node.
    #[inline]
    pub fn node_page(&self, id: NodeId) -> PageId {
        self.store.get(id).page
    }

    /// `true` if `id` refers to a live node (nodes disappear when tree
    /// condensation after a deletion removes them).
    #[inline]
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.store.contains(id)
    }

    /// Total number of live nodes (pages occupied by the tree).
    pub fn num_nodes(&self) -> usize {
        self.store.len()
    }

    /// Number of data pages.
    pub fn num_leaves(&self) -> usize {
        self.store.iter().filter(|(_, n)| n.is_leaf()).count()
    }

    /// Iterate over the data pages.
    pub fn leaves(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.store.iter().filter(|(_, n)| n.is_leaf())
    }

    /// Iterate over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.store.iter()
    }

    /// MBR of the whole tree (empty when the tree is empty).
    pub fn mbr(&self) -> Rect {
        self.store.get(self.root).mbr()
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Insert a leaf entry, performing the complete R\*-tree insertion
    /// algorithm (ChooseSubtree, forced reinsert, splits). Node accesses
    /// are reported to `io`.
    pub fn insert(&mut self, entry: LeafEntry, io: &mut impl NodeIo) -> InsertOutcome {
        let mut ctx = InsertCtx::default();
        let leaf = self.choose_subtree(&entry.mbr, 0, io);
        self.place_in_node(leaf, AnyEntry::Leaf(entry), io);
        self.len += 1;
        if self.is_overflowing(leaf) {
            self.overflow_treatment(leaf, &mut ctx, io);
        }
        InsertOutcome {
            leaf: Some(leaf),
            leaf_splits: ctx.leaf_splits,
            leaf_reinserts: ctx.leaf_reinserts,
        }
    }

    /// ChooseSubtree (\[BKSS90\] §4.1): descend from the root to a node at
    /// `target_level`, charging a read per visited node.
    fn choose_subtree(&self, rect: &Rect, target_level: u32, io: &mut impl NodeIo) -> NodeId {
        let mut cur = self.root;
        io.read(self.store.get(cur).page);
        while self.store.get(cur).level > target_level {
            let node = self.store.get(cur);
            let entries = node.dir_entries();
            let children_are_targets = node.level == target_level + 1;
            let idx = if children_are_targets && target_level == 0 {
                self.choose_least_overlap(entries, rect)
            } else {
                Self::choose_least_enlargement(entries, rect)
            };
            cur = entries[idx].child;
            io.read(self.store.get(cur).page);
        }
        cur
    }

    /// Least area enlargement, ties by least area.
    fn choose_least_enlargement(entries: &[DirEntry], rect: &Rect) -> usize {
        let mut best = 0usize;
        let mut best_enl = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for (i, e) in entries.iter().enumerate() {
            let enl = e.mbr.enlargement(rect);
            let area = e.mbr.area();
            if enl < best_enl || (enl == best_enl && area < best_area) {
                best = i;
                best_enl = enl;
                best_area = area;
            }
        }
        best
    }

    /// Least overlap enlargement (leaf-level ChooseSubtree), with the
    /// \[BKSS90\] top-32 area-enlargement prefilter; ties by least area
    /// enlargement, then least area.
    fn choose_least_overlap(&self, entries: &[DirEntry], rect: &Rect) -> usize {
        const PREFILTER: usize = 32;
        let mut candidates: Vec<usize> = (0..entries.len()).collect();
        if entries.len() > PREFILTER {
            candidates.sort_by(|&a, &b| {
                entries[a]
                    .mbr
                    .enlargement(rect)
                    .total_cmp(&entries[b].mbr.enlargement(rect))
            });
            candidates.truncate(PREFILTER);
        }
        let mut best = candidates[0];
        let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for &i in &candidates {
            let enlarged = entries[i].mbr.union(rect);
            let mut overlap_delta = 0.0;
            for (j, other) in entries.iter().enumerate() {
                if j == i {
                    continue;
                }
                overlap_delta +=
                    enlarged.overlap_area(&other.mbr) - entries[i].mbr.overlap_area(&other.mbr);
            }
            let key = (
                overlap_delta,
                entries[i].mbr.enlargement(rect),
                entries[i].mbr.area(),
            );
            if key < best_key {
                best = i;
                best_key = key;
            }
        }
        best
    }

    fn place_in_node(&mut self, node_id: NodeId, item: AnyEntry, io: &mut impl NodeIo) {
        let page = self.store.get(node_id).page;
        match item {
            AnyEntry::Leaf(e) => {
                self.store.get_mut(node_id).leaf_entries_mut().push(e);
            }
            AnyEntry::Dir(e) => {
                let child = e.child;
                self.store.get_mut(node_id).dir_entries_mut().push(e);
                self.store.get_mut(child).parent = Some(node_id);
            }
        }
        io.modify(page);
        self.update_path_mbrs(node_id, io);
    }

    /// Recompute the cached MBRs on the path from `node_id` to the root,
    /// charging a modify for every parent whose dir entry changed.
    fn update_path_mbrs(&mut self, node_id: NodeId, io: &mut impl NodeIo) {
        let mut cur = node_id;
        while let Some(parent) = self.store.get(cur).parent {
            let child_mbr = self.store.get(cur).mbr();
            let idx = self.child_index(parent, cur);
            let parent_node = self.store.get_mut(parent);
            let slot = &mut parent_node.dir_entries_mut()[idx];
            if slot.mbr == child_mbr {
                break;
            }
            slot.mbr = child_mbr;
            let page = parent_node.page;
            io.modify(page);
            cur = parent;
        }
    }

    fn child_index(&self, parent: NodeId, child: NodeId) -> usize {
        self.store
            .get(parent)
            .dir_entries()
            .iter()
            .position(|e| e.child == child)
            .expect("child not found in parent")
    }

    fn is_overflowing(&self, node_id: NodeId) -> bool {
        let node = self.store.get(node_id);
        if node.len() > self.config.max_entries {
            return true;
        }
        if node.is_leaf() {
            if let Some(limit) = self.config.leaf_payload_limit {
                return node.payload() > limit;
            }
        }
        false
    }

    fn overflow_treatment(&mut self, node_id: NodeId, ctx: &mut InsertCtx, io: &mut impl NodeIo) {
        let node = self.store.get(node_id);
        let level = node.level;
        let is_root = node.parent.is_none();
        let reinsert_allowed = level > 0 || self.config.leaf_reinsert_enabled;
        if !is_root && reinsert_allowed && !ctx.level_done(level) && node.len() > 1 {
            ctx.mark_level(level);
            self.forced_reinsert(node_id, ctx, io);
        } else {
            self.split_node(node_id, ctx, io);
        }
    }

    /// Forced reinsert (\[BKSS90\] §4.3): remove the `p` entries farthest
    /// from the node centre and reinsert them closest-first.
    fn forced_reinsert(&mut self, node_id: NodeId, ctx: &mut InsertCtx, io: &mut impl NodeIo) {
        let (level, page, center) = {
            let node = self.store.get(node_id);
            (node.level, node.page, node.mbr().center())
        };
        let p = self.config.reinsert_count(self.store.get(node_id).len());
        // Collect (distance, index) and take the p farthest.
        let removed: Vec<AnyEntry> = {
            let node = self.store.get_mut(node_id);
            match &mut node.kind {
                NodeKind::Leaf(entries) => {
                    let mut order: Vec<usize> = (0..entries.len()).collect();
                    order.sort_by(|&a, &b| {
                        let da = entries[a].mbr.center().distance_sq(&center);
                        let db = entries[b].mbr.center().distance_sq(&center);
                        db.total_cmp(&da)
                    });
                    let mut far: Vec<usize> = order[..p].to_vec();
                    far.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
                    far.iter()
                        .map(|&i| AnyEntry::Leaf(entries.swap_remove(i)))
                        .collect()
                }
                NodeKind::Dir(entries) => {
                    let mut order: Vec<usize> = (0..entries.len()).collect();
                    order.sort_by(|&a, &b| {
                        let da = entries[a].mbr.center().distance_sq(&center);
                        let db = entries[b].mbr.center().distance_sq(&center);
                        db.total_cmp(&da)
                    });
                    let mut far: Vec<usize> = order[..p].to_vec();
                    far.sort_unstable_by(|a, b| b.cmp(a));
                    far.iter()
                        .map(|&i| AnyEntry::Dir(entries.swap_remove(i)))
                        .collect()
                }
            }
        };
        io.modify(page);
        self.update_path_mbrs(node_id, io);
        // Close reinsert: insert the entry closest to the centre first.
        let mut ordered = removed;
        ordered.sort_by(|a, b| {
            let da = a.rect().center().distance_sq(&center);
            let db = b.rect().center().distance_sq(&center);
            da.total_cmp(&db)
        });
        for item in ordered {
            self.insert_at_level(item, level, ctx, io);
        }
        // A payload-overflowing node can remain over the limit even after
        // 30% of its entries left (the removed entries may have settled
        // elsewhere). Split it now — the level is already marked, so this
        // cannot recurse into another reinsert.
        if self.is_overflowing(node_id) {
            self.split_node(node_id, ctx, io);
        }
    }

    fn insert_at_level(
        &mut self,
        item: AnyEntry,
        level: u32,
        ctx: &mut InsertCtx,
        io: &mut impl NodeIo,
    ) {
        let rect = item.rect();
        let host_level = match item {
            AnyEntry::Leaf(_) => 0,
            AnyEntry::Dir(_) => level,
        };
        let target = self.choose_subtree(&rect, host_level, io);
        if let AnyEntry::Leaf(e) = &item {
            ctx.leaf_reinserts.push((e.oid, target));
        }
        self.place_in_node(target, item, io);
        if self.is_overflowing(target) {
            self.overflow_treatment(target, ctx, io);
        }
    }

    fn split_node(&mut self, node_id: NodeId, ctx: &mut InsertCtx, io: &mut impl NodeIo) {
        let (level, parent, page) = {
            let n = self.store.get(node_id);
            (n.level, n.parent, n.page)
        };
        if self.store.get(node_id).len() < 2 {
            // A single entry cannot be split (single object larger than
            // the payload limit); the storage layer prevents this by
            // routing oversized objects to an overflow area.
            return;
        }
        let new_page = self.pages.alloc_page();
        let (new_kind, split_event) = match &self.store.get(node_id).kind {
            NodeKind::Leaf(entries) => {
                let m = self.config.min_entries_for(entries.len());
                let d = rstar_split(entries, m);
                let first: Vec<LeafEntry> = d.first.iter().map(|&i| entries[i]).collect();
                let second: Vec<LeafEntry> = d.second.iter().map(|&i| entries[i]).collect();
                let event = LeafSplit {
                    old: node_id,
                    new: NodeId(u32::MAX), // patched below
                    old_oids: first.iter().map(|e| e.oid).collect(),
                    new_oids: second.iter().map(|e| e.oid).collect(),
                };
                self.store.get_mut(node_id).kind = NodeKind::Leaf(first);
                (NodeKind::Leaf(second), Some(event))
            }
            NodeKind::Dir(entries) => {
                let m = self.config.min_entries_for(entries.len());
                let d = rstar_split(entries, m);
                let (_r1, _r2) = distribution_rects(entries, &d);
                let first: Vec<DirEntry> = d.first.iter().map(|&i| entries[i]).collect();
                let second: Vec<DirEntry> = d.second.iter().map(|&i| entries[i]).collect();
                self.store.get_mut(node_id).kind = NodeKind::Dir(first);
                (NodeKind::Dir(second), None)
            }
        };
        let new_id = self.store.insert(Node {
            kind: new_kind,
            page: new_page,
            parent,
            level,
        });
        // Re-parent the children that moved to the new node.
        if let NodeKind::Dir(entries) = &self.store.get(new_id).kind {
            let children: Vec<NodeId> = entries.iter().map(|e| e.child).collect();
            for c in children {
                self.store.get_mut(c).parent = Some(new_id);
            }
        }
        if let Some(mut ev) = split_event {
            ev.new = new_id;
            ctx.leaf_splits.push(ev);
        }
        io.modify(page);
        io.fresh(new_page);

        match parent {
            None => {
                // Root split: grow the tree by one level.
                let root_page = self.pages.alloc_page();
                let old_mbr = self.store.get(node_id).mbr();
                let new_mbr = self.store.get(new_id).mbr();
                let root_id = self.store.insert(Node {
                    kind: NodeKind::Dir(vec![
                        DirEntry {
                            mbr: old_mbr,
                            child: node_id,
                        },
                        DirEntry {
                            mbr: new_mbr,
                            child: new_id,
                        },
                    ]),
                    page: root_page,
                    parent: None,
                    level: level + 1,
                });
                self.store.get_mut(node_id).parent = Some(root_id);
                self.store.get_mut(new_id).parent = Some(root_id);
                self.root = root_id;
                io.fresh(root_page);
            }
            Some(parent_id) => {
                let old_mbr = self.store.get(node_id).mbr();
                let new_mbr = self.store.get(new_id).mbr();
                let idx = self.child_index(parent_id, node_id);
                let parent_page = {
                    let pn = self.store.get_mut(parent_id);
                    pn.dir_entries_mut()[idx].mbr = old_mbr;
                    pn.dir_entries_mut().push(DirEntry {
                        mbr: new_mbr,
                        child: new_id,
                    });
                    pn.page
                };
                io.modify(parent_page);
                self.update_path_mbrs(parent_id, io);
                if self.is_overflowing(parent_id) {
                    self.overflow_treatment(parent_id, ctx, io);
                }
            }
        }
        // The R*-tree distribution optimizes overlap and area, not
        // payload: a half can still exceed the byte limit (e.g. one
        // near-page-sized object grouped with smaller ones). Split such
        // halves again; each split strictly shrinks the entry count, so
        // this terminates.
        if self.is_overflowing(node_id) {
            self.split_node(node_id, ctx, io);
        }
        if self.is_overflowing(new_id) {
            self.split_node(new_id, ctx, io);
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Delete the entry for `oid` whose MBR equals `mbr`. Returns the
    /// outcome, including any entry relocations the storage layer must
    /// mirror.
    pub fn delete(&mut self, oid: ObjectId, mbr: &Rect, io: &mut impl NodeIo) -> DeleteOutcome {
        let Some(leaf) = self.find_leaf(self.root, oid, mbr, io) else {
            return DeleteOutcome::default();
        };
        let page = self.store.get(leaf).page;
        {
            let entries = self.store.get_mut(leaf).leaf_entries_mut();
            let idx = entries
                .iter()
                .position(|e| e.oid == oid)
                .expect("entry vanished");
            entries.remove(idx);
        }
        io.modify(page);
        self.len -= 1;
        let mut ctx = InsertCtx::default();
        self.condense_tree(leaf, &mut ctx, io);
        DeleteOutcome {
            removed: true,
            leaf: Some(leaf),
            leaf_reinserts: ctx.leaf_reinserts,
            leaf_splits: ctx.leaf_splits,
        }
    }

    fn find_leaf(
        &self,
        node_id: NodeId,
        oid: ObjectId,
        mbr: &Rect,
        io: &mut impl NodeIo,
    ) -> Option<NodeId> {
        io.read(self.store.get(node_id).page);
        match &self.store.get(node_id).kind {
            NodeKind::Leaf(entries) => entries.iter().any(|e| e.oid == oid).then_some(node_id),
            NodeKind::Dir(entries) => {
                for e in entries {
                    if e.mbr.contains_rect(mbr) {
                        if let Some(found) = self.find_leaf(e.child, oid, mbr, io) {
                            return Some(found);
                        }
                    }
                }
                None
            }
        }
    }

    fn condense_tree(&mut self, leaf: NodeId, ctx: &mut InsertCtx, io: &mut impl NodeIo) {
        let min_fill =
            (self.config.min_fill_ratio * self.config.max_entries as f64).floor() as usize;
        let mut orphans: Vec<(AnyEntry, u32)> = Vec::new();
        let mut cur = leaf;
        while let Some(parent) = self.store.get(cur).parent {
            if self.store.get(cur).len() < min_fill {
                // Remove `cur` from its parent and stash its entries.
                let idx = self.child_index(parent, cur);
                let parent_page = self.store.get(parent).page;
                self.store.get_mut(parent).dir_entries_mut().remove(idx);
                io.modify(parent_page);
                let node = self.store.remove(cur);
                io.release(node.page);
                self.pages.free_page(node.page);
                let level = node.level;
                match node.kind {
                    NodeKind::Leaf(entries) => {
                        orphans.extend(entries.into_iter().map(|e| (AnyEntry::Leaf(e), level)));
                    }
                    NodeKind::Dir(entries) => {
                        orphans.extend(entries.into_iter().map(|e| (AnyEntry::Dir(e), level)));
                    }
                }
                cur = parent;
            } else {
                self.update_path_mbrs(cur, io);
                break;
            }
        }
        // Reinsert orphans, deepest (leaf) entries first.
        orphans.sort_by_key(|(_, level)| *level);
        for (item, level) in orphans {
            if let AnyEntry::Leaf(_) = item {
                self.insert_at_level(item, 0, ctx, io);
            } else {
                self.insert_at_level(item, level, ctx, io);
            }
        }
        // Shrink the root while it is a directory node with one child.
        while !self.store.get(self.root).is_leaf() && self.store.get(self.root).len() == 1 {
            let old_root = self.root;
            let child = self.store.get(old_root).dir_entries()[0].child;
            let node = self.store.remove(old_root);
            io.release(node.page);
            self.pages.free_page(node.page);
            self.store.get_mut(child).parent = None;
            self.root = child;
        }
    }

    /// Pages currently allocated for tree nodes.
    pub fn allocated_pages(&self) -> u64 {
        self.pages.allocated_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{CountingIo, NoIo};
    use crate::validate::check_invariants;
    use spatialdb_disk::Disk;

    fn small_config() -> RTreeConfig {
        RTreeConfig {
            max_entries: 8,
            min_fill_ratio: 0.4,
            reinsert_fraction: 0.3,
            leaf_reinsert_enabled: true,
            leaf_payload_limit: None,
        }
    }

    fn tree(config: RTreeConfig) -> RStarTree {
        let disk = Disk::with_defaults();
        RStarTree::new(config, disk.create_region("tree"))
    }

    fn grid_entry(i: u64, n: u64) -> LeafEntry {
        let x = (i % n) as f64;
        let y = (i / n) as f64;
        LeafEntry::new(Rect::new(x, y, x + 0.5, y + 0.5), ObjectId(i), 0)
    }

    #[test]
    fn empty_tree_properties() {
        let t = tree(small_config());
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_nodes(), 1);
        assert!(t.mbr().is_empty());
    }

    #[test]
    fn insert_grows_and_splits() {
        let mut t = tree(small_config());
        for i in 0..200 {
            t.insert(grid_entry(i, 20), &mut NoIo);
        }
        assert_eq!(t.len(), 200);
        assert!(t.height() >= 2);
        assert!(t.num_leaves() > 1);
        check_invariants(&t).unwrap();
    }

    #[test]
    fn insert_outcome_reports_leaf() {
        let mut t = tree(small_config());
        let out = t.insert(grid_entry(0, 10), &mut NoIo);
        let leaf = out.leaf.unwrap();
        assert!(t
            .node(leaf)
            .leaf_entries()
            .iter()
            .any(|e| e.oid == ObjectId(0)));
    }

    #[test]
    fn split_events_partition_entries() {
        let mut t = tree(RTreeConfig {
            leaf_reinsert_enabled: false,
            ..small_config()
        });
        let mut all_events = Vec::new();
        for i in 0..100 {
            let out = t.insert(grid_entry(i, 10), &mut NoIo);
            all_events.extend(out.leaf_splits);
        }
        assert!(!all_events.is_empty());
        for ev in &all_events {
            assert!(!ev.old_oids.is_empty());
            assert!(!ev.new_oids.is_empty());
            // Disjoint groups.
            for oid in &ev.new_oids {
                assert!(!ev.old_oids.contains(oid));
            }
        }
        check_invariants(&t).unwrap();
    }

    #[test]
    fn payload_limit_triggers_cluster_split() {
        // Each entry carries 100 payload bytes; limit 350 → a leaf splits
        // after the 4th entry even though M = 8.
        let mut t = tree(RTreeConfig {
            leaf_payload_limit: Some(350),
            leaf_reinsert_enabled: false,
            ..small_config()
        });
        let mut split_seen = false;
        for i in 0..8 {
            let e = LeafEntry::new(
                Rect::new(i as f64, 0.0, i as f64 + 0.4, 1.0),
                ObjectId(i),
                100,
            );
            let out = t.insert(e, &mut NoIo);
            split_seen |= !out.leaf_splits.is_empty();
        }
        assert!(split_seen);
        for (_, leaf) in t.leaves() {
            assert!(leaf.payload() <= 350, "payload {}", leaf.payload());
        }
        check_invariants(&t).unwrap();
    }

    #[test]
    fn leaf_reinserts_reported_when_enabled() {
        let mut t = tree(small_config());
        let mut reinserts = 0;
        for i in 0..300 {
            let out = t.insert(grid_entry(i, 20), &mut NoIo);
            reinserts += out.leaf_reinserts.len();
        }
        assert!(reinserts > 0, "R*-tree should have reinserted entries");
        check_invariants(&t).unwrap();
    }

    #[test]
    fn no_leaf_reinserts_when_disabled() {
        let mut t = tree(RTreeConfig {
            leaf_reinsert_enabled: false,
            ..small_config()
        });
        for i in 0..300 {
            let out = t.insert(grid_entry(i, 20), &mut NoIo);
            assert!(out.leaf_reinserts.is_empty());
        }
        check_invariants(&t).unwrap();
    }

    #[test]
    fn io_charged_on_descent() {
        let mut t = tree(small_config());
        let mut io = CountingIo::default();
        t.insert(grid_entry(0, 10), &mut io);
        assert_eq!(io.reads, 1); // root only
        assert!(io.modifies >= 1);
    }

    #[test]
    fn delete_removes_entry() {
        let mut t = tree(small_config());
        for i in 0..50 {
            t.insert(grid_entry(i, 10), &mut NoIo);
        }
        let mbr = grid_entry(17, 10).mbr;
        let out = t.delete(ObjectId(17), &mbr, &mut NoIo);
        assert!(out.removed);
        assert_eq!(t.len(), 49);
        // Gone from every leaf.
        for (_, leaf) in t.leaves() {
            assert!(!leaf.leaf_entries().iter().any(|e| e.oid == ObjectId(17)));
        }
        check_invariants(&t).unwrap();
    }

    #[test]
    fn delete_missing_entry_is_noop() {
        let mut t = tree(small_config());
        for i in 0..10 {
            t.insert(grid_entry(i, 10), &mut NoIo);
        }
        let out = t.delete(ObjectId(99), &Rect::new(0.0, 0.0, 1.0, 1.0), &mut NoIo);
        assert!(!out.removed);
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn delete_everything_collapses_tree() {
        let mut t = tree(small_config());
        for i in 0..100 {
            t.insert(grid_entry(i, 10), &mut NoIo);
        }
        for i in 0..100 {
            let mbr = grid_entry(i, 10).mbr;
            assert!(t.delete(ObjectId(i), &mbr, &mut NoIo).removed, "i={i}");
            check_invariants(&t).unwrap();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert_eq!(t.num_nodes(), 1);
    }

    #[test]
    fn page_allocation_tracks_nodes() {
        let mut t = tree(small_config());
        for i in 0..200 {
            t.insert(grid_entry(i, 20), &mut NoIo);
        }
        assert_eq!(t.allocated_pages(), t.num_nodes() as u64);
    }

    #[test]
    fn many_duplicate_rects_still_split() {
        // Degenerate input: all entries identical. Splits must still
        // terminate and respect min fill.
        let mut t = tree(small_config());
        for i in 0..100 {
            let e = LeafEntry::new(Rect::new(1.0, 1.0, 2.0, 2.0), ObjectId(i), 0);
            t.insert(e, &mut NoIo);
        }
        assert_eq!(t.len(), 100);
        check_invariants(&t).unwrap();
    }
}

//! R\*-tree configuration.

/// Size of one entry (leaf or directory) in bytes: MBR, child/object
/// reference and administrative data (§5.1 of the VLDB'94 paper: *"For the
/// representation of an object entry in a data page, 46 Bytes are used"*).
pub const ENTRY_BYTES: usize = 46;

/// Configuration of an [`crate::RStarTree`].
#[derive(Clone, Debug, PartialEq)]
pub struct RTreeConfig {
    /// Maximum number of entries per node, `M`.
    ///
    /// With 4 KB pages and 46-byte entries: `M = ⌊4096 / 46⌋ = 89`.
    pub max_entries: usize,
    /// Minimum fill ratio `m / M` used by splits and deletions. \[BKSS90\]
    /// found 40 % to perform best.
    pub min_fill_ratio: f64,
    /// Fraction of entries removed by a forced reinsert. \[BKSS90\]: 30 %.
    pub reinsert_fraction: f64,
    /// Whether forced reinsert is performed at the leaf (data page)
    /// level. The cluster organization disables it (§4.2.1): a leaf-level
    /// reinsert would transfer complete spatial objects from one cluster
    /// unit into another.
    pub leaf_reinsert_enabled: bool,
    /// Optional byte payload limit for leaves. A leaf overflows when its
    /// entry count exceeds [`RTreeConfig::max_entries`] *or* the sum of
    /// its entries' payload bytes exceeds this limit:
    ///
    /// * cluster organization: the limit is `Smax` and each entry's
    ///   payload is its object's exact-representation size — this is the
    ///   *cluster split*;
    /// * primary organization: the limit is the page capacity and each
    ///   entry's payload is `46 + object size`;
    /// * secondary organization: `None` (the count bound alone applies).
    pub leaf_payload_limit: Option<u64>,
}

impl RTreeConfig {
    /// The paper's defaults for a plain R\*-tree over 46-byte entries in
    /// 4 KB pages (secondary organization).
    pub fn paper_default(page_bytes: usize) -> Self {
        RTreeConfig {
            max_entries: page_bytes / ENTRY_BYTES,
            min_fill_ratio: 0.4,
            reinsert_fraction: 0.3,
            leaf_reinsert_enabled: true,
            leaf_payload_limit: None,
        }
    }

    /// Configuration of the modified R\*-tree of the cluster organization
    /// (§4.2.1): no leaf-level reinsert, cluster split at `smax_bytes`.
    pub fn cluster(page_bytes: usize, smax_bytes: u64) -> Self {
        RTreeConfig {
            leaf_reinsert_enabled: false,
            leaf_payload_limit: Some(smax_bytes),
            ..Self::paper_default(page_bytes)
        }
    }

    /// Configuration for the primary organization: leaves are
    /// byte-constrained by the page capacity.
    pub fn primary(page_bytes: usize) -> Self {
        RTreeConfig {
            leaf_payload_limit: Some(page_bytes as u64),
            ..Self::paper_default(page_bytes)
        }
    }

    /// Minimum number of entries `m` for a node currently holding
    /// `count` entries when splitting (`max(1, ⌊ratio · count⌋)`, capped
    /// so that both split halves are non-empty).
    pub fn min_entries_for(&self, count: usize) -> usize {
        let m = (self.min_fill_ratio * count as f64).floor() as usize;
        m.clamp(1, count / 2)
    }

    /// Number of entries removed by a forced reinsert of a node with
    /// `count` entries (at least 1, at most `count - 1`).
    pub fn reinsert_count(&self, count: usize) -> usize {
        let p = (self.reinsert_fraction * count as f64).round() as usize;
        p.clamp(1, count.saturating_sub(1).max(1))
    }

    /// Validate the configuration, panicking on nonsense values.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "M must be at least 4");
        assert!(
            (0.0..=0.5).contains(&self.min_fill_ratio),
            "min fill ratio must be in (0, 0.5]"
        );
        assert!(
            (0.0..1.0).contains(&self.reinsert_fraction),
            "reinsert fraction must be in [0, 1)"
        );
    }
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self::paper_default(crate::io::PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_capacity() {
        let c = RTreeConfig::paper_default(4096);
        assert_eq!(c.max_entries, 89);
        assert!(c.leaf_reinsert_enabled);
        assert!(c.leaf_payload_limit.is_none());
    }

    #[test]
    fn cluster_config_disables_leaf_reinsert() {
        let c = RTreeConfig::cluster(4096, 80 * 1024);
        assert!(!c.leaf_reinsert_enabled);
        assert_eq!(c.leaf_payload_limit, Some(80 * 1024));
    }

    #[test]
    fn primary_config_byte_limited() {
        let c = RTreeConfig::primary(4096);
        assert_eq!(c.leaf_payload_limit, Some(4096));
        assert!(c.leaf_reinsert_enabled);
    }

    #[test]
    fn min_entries_bounds() {
        let c = RTreeConfig::paper_default(4096);
        assert_eq!(c.min_entries_for(90), 36);
        assert_eq!(c.min_entries_for(2), 1);
        assert_eq!(c.min_entries_for(3), 1);
        // Never more than half so both groups are non-empty.
        for n in 2..200 {
            let m = c.min_entries_for(n);
            assert!(m >= 1 && m <= n / 2, "n={n} m={m}");
        }
    }

    #[test]
    fn reinsert_count_bounds() {
        let c = RTreeConfig::paper_default(4096);
        assert_eq!(c.reinsert_count(90), 27);
        assert!(c.reinsert_count(2) >= 1);
        for n in 2..200 {
            let p = c.reinsert_count(n);
            assert!(p >= 1 && p < n, "n={n} p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "M must be at least 4")]
    fn validate_rejects_tiny_m() {
        RTreeConfig {
            max_entries: 2,
            ..Default::default()
        }
        .validate();
    }
}

//! Tree entries: leaf entries (object MBRs) and directory entries.

use crate::node::NodeId;
use spatialdb_geom::Rect;

/// Identifier of a spatial object stored in an organization model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// An entry of a data page: the object's MBR, its id, and the payload
/// bytes it contributes towards the leaf payload limit (see
/// [`crate::RTreeConfig::leaf_payload_limit`]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LeafEntry {
    /// Minimum bounding rectangle of the object.
    pub mbr: Rect,
    /// The object this entry refers to.
    pub oid: ObjectId,
    /// Payload bytes charged against the leaf payload limit
    /// (object size for the cluster organization, entry + object size for
    /// the primary organization, unused for the secondary organization).
    pub payload: u32,
}

impl LeafEntry {
    /// Create a leaf entry.
    pub fn new(mbr: Rect, oid: ObjectId, payload: u32) -> Self {
        LeafEntry { mbr, oid, payload }
    }
}

/// An entry of a directory page: the MBR of a child node.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DirEntry {
    /// Minimum bounding rectangle of everything below `child`.
    pub mbr: Rect,
    /// The child node.
    pub child: NodeId,
}

/// Anything that can participate in the R\*-tree split algorithm.
pub(crate) trait SplitItem {
    fn rect(&self) -> Rect;
}

impl SplitItem for LeafEntry {
    #[inline]
    fn rect(&self) -> Rect {
        self.mbr
    }
}

impl SplitItem for DirEntry {
    #[inline]
    fn rect(&self) -> Rect {
        self.mbr
    }
}

//! The scenario determinism contract: the same scenario and seed
//! render a byte-identical report at any thread count, across every
//! storage organization, with the I/O books balanced.

use spatialdb::{ArmPolicy, Arrival, EngineConfig, StripePolicy};
use spatialdb_workload::{Dataset, Mix, Scenario, WindowSweep};

fn scenario(threads: usize) -> Scenario {
    Scenario::new("determinism")
        .dataset(Dataset::uniform(600).polyline_segments(4))
        .databases(2)
        .engine(EngineConfig::default().buffer_pages(256))
        .windows(
            WindowSweep::new(24)
                .size_base(0.05)
                .size_amp(0.15)
                .size_period(5),
        )
        .arrivals(Arrival::open(0.8))
        .sweep_depths(&[1, 4])
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .sweep_arms(&[1, 2])
        .sweep_stripes(&[StripePolicy::RoundRobin])
        .mix(
            Mix::new()
                .window(0.4)
                .point(0.2)
                .join(0.1)
                .insert(0.15)
                .delete(0.15),
        )
        .operations(32)
        .seed(7)
        .threads(threads)
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let serial = scenario(1).run();
    let parallel = scenario(8).run();
    serial.assert_stats_conserved();
    parallel.assert_stats_conserved();
    // All three organizations, every grid cell, and the mixed streams:
    // one string comparison covers the lot.
    assert_eq!(serial.to_json(), parallel.to_json());
    // Sanity: the sweep actually covered the grid (3 orgs × 1 stripe ×
    // 2 depths × 2 policies × 2 arms) and ran the mixed streams.
    assert_eq!(serial.cells().len(), 24);
    assert_eq!(serial.mixes.len(), 3);
    assert!(serial
        .mixes
        .iter()
        .all(|m| { m.windows + m.points + m.joins + m.inserts + m.deletes == 32 }));
    // The full op algebra is exercised: deletes actually ran.
    assert!(serial.mixes.iter().all(|m| m.deletes > 0));
}

#[test]
fn rerunning_the_same_scenario_reproduces_the_report() {
    let a = scenario(4).run();
    let b = scenario(4).run();
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
#[should_panic(expected = "invalid engine config")]
fn invalid_engine_config_is_rejected_before_any_work() {
    let _ = Scenario::new("bad")
        .engine(EngineConfig::default().buffer_pages(4).shards(8))
        .run();
}

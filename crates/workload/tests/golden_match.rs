//! Golden-file regression: benchmark-shaped scenarios must reproduce
//! the checked-in `BENCH_*.json` rows **byte for byte**.
//!
//! The fast tests sweep a subset of each benchmark grid (cells are
//! matched by key, so a subset still verifies exactly); the `#[ignore]`
//! tests sweep the full grids and are run in release CI alongside the
//! binaries themselves.

use spatialdb::storage::OrganizationKind;
use spatialdb::{ArmPolicy, Arrival, EngineConfig, StripePolicy};
use spatialdb_workload::{Dataset, RowFormat, Scenario, WindowSweep};

fn io_latency_scenario() -> Scenario {
    Scenario::new("io-latency")
        .dataset(Dataset::grid(6000))
        .databases(1)
        .engine(EngineConfig::default().buffer_pages(512))
        .windows(
            WindowSweep::new(160)
                .size_base(0.04)
                .size_amp(0.22)
                .size_period(7),
        )
        .arrivals(Arrival::open(0.9))
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
}

fn decluster_scenario() -> Scenario {
    Scenario::new("decluster")
        .dataset(Dataset::grid(6000))
        .databases(6)
        .engine(EngineConfig::default().buffer_pages(512 * 6))
        .windows(
            WindowSweep::new(144)
                .size_base(0.05)
                .size_amp(0.20)
                .size_period(5),
        )
        .arrivals(Arrival::open(0.7))
        .depth(16)
}

#[test]
fn io_latency_subset_matches_golden() {
    io_latency_scenario()
        .organizations(&[OrganizationKind::Secondary])
        .sweep_depths(&[16])
        .run()
        .assert_stats_conserved()
        .assert_matches_golden("../../BENCH_io_latency.json", RowFormat::IoLatency);
}

#[test]
fn decluster_subset_matches_golden() {
    decluster_scenario()
        .organizations(&[OrganizationKind::Secondary])
        .sweep_policies(&[ArmPolicy::Elevator])
        .sweep_arms(&[1, 4])
        .sweep_stripes(&[StripePolicy::RoundRobin])
        .run()
        .assert_stats_conserved()
        .assert_matches_golden("../../BENCH_decluster.json", RowFormat::Decluster);
}

#[test]
#[ignore = "full benchmark grid; run in release (cargo test --release -- --ignored)"]
fn io_latency_full_grid_matches_golden() {
    io_latency_scenario()
        .sweep_depths(&[1, 2, 4, 8, 16])
        .run()
        .assert_stats_conserved()
        .assert_matches_golden("../../BENCH_io_latency.json", RowFormat::IoLatency);
}

#[test]
#[ignore = "full benchmark grid; run in release (cargo test --release -- --ignored)"]
fn decluster_full_grid_matches_golden() {
    decluster_scenario()
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .sweep_arms(&[1, 2, 4, 8])
        .sweep_stripes(&[
            StripePolicy::RoundRobin,
            StripePolicy::RegionHash,
            StripePolicy::MbrLocality,
        ])
        .run()
        .assert_stats_conserved()
        .assert_matches_golden("../../BENCH_decluster.json", RowFormat::Decluster);
}

//! Golden-file regression support: extract the `"rows"` array of a
//! checked-in `BENCH_*.json` and key rows for exact-match comparison.
//!
//! The benchmark files are written as one row per line inside a
//! `"rows": [ … ]` block, so no general JSON parser is needed — rows
//! are compared as **verbatim strings** (the whole point: the harness
//! must reproduce the binaries' formatting byte for byte), and only
//! the key fields are scanned out for matching.

use std::path::Path;

/// Which benchmark's row shape a cell should be rendered and keyed as.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowFormat {
    /// `BENCH_io_latency.json`: keyed by `org`/`policy`/`depth`.
    IoLatency,
    /// `BENCH_decluster.json`: keyed by `org`/`stripe`/`policy`/`arms`.
    Decluster,
}

/// The identifying fields of one benchmark row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowKey {
    /// `"org"` field.
    pub org: String,
    /// `"policy"` field.
    pub policy: String,
    /// `"depth"` field (io-latency rows; 0 otherwise).
    pub depth: u64,
    /// `"stripe"` field (decluster rows; empty otherwise).
    pub stripe: String,
    /// `"arms"` field (decluster rows; 0 otherwise).
    pub arms: u64,
}

/// Scan one `"field": value` out of a row, returning the raw value
/// text (quotes stripped for strings).
pub fn field<'a>(row: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\": ");
    let start = row.find(&needle)? + needle.len();
    let rest = &row[start..];
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

/// Key a row (generated or golden) for matching. `None` when a
/// required key field is missing.
pub fn row_key(row: &str, format: RowFormat) -> Option<RowKey> {
    let org = field(row, "org")?.to_string();
    let policy = field(row, "policy")?.to_string();
    match format {
        RowFormat::IoLatency => Some(RowKey {
            org,
            policy,
            depth: field(row, "depth")?.parse().ok()?,
            stripe: String::new(),
            arms: 0,
        }),
        RowFormat::Decluster => Some(RowKey {
            org,
            policy,
            depth: 0,
            stripe: field(row, "stripe")?.to_string(),
            arms: field(row, "arms")?.parse().ok()?,
        }),
    }
}

/// Read a benchmark golden file and return its rows, one verbatim
/// line each (trailing commas stripped, indentation kept).
pub fn load_rows(path: &Path) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    parse_rows(&text).ok_or_else(|| "no \"rows\": [ … ] block found".to_string())
}

/// Extract the row lines from a benchmark JSON text.
pub fn parse_rows(text: &str) -> Option<Vec<String>> {
    let start = text.find("\"rows\": [")?;
    let mut rows = Vec::new();
    let mut in_rows = false;
    for line in text[start..].lines() {
        if !in_rows {
            in_rows = true; // the `"rows": [` line itself
            continue;
        }
        let trimmed = line.trim();
        if trimmed == "]" || trimmed.starts_with(']') {
            return Some(rows);
        }
        rows.push(line.trim_end_matches(',').to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "{\n  \"bench\": \"io_latency\",\n  \"rows\": [\n    \
        {\"org\": \"secondary\", \"policy\": \"fcfs\", \"depth\": 1, \"p50_ms\": 1.125},\n    \
        {\"org\": \"cluster\", \"policy\": \"elevator\", \"depth\": 16, \"p50_ms\": 2.5}\n  ]\n}\n";

    #[test]
    fn parses_rows_and_fields() {
        let rows = parse_rows(SAMPLE).expect("rows");
        assert_eq!(rows.len(), 2);
        assert!(rows[0].starts_with("    {\"org\": \"secondary\""));
        assert!(!rows[0].ends_with(','));
        assert_eq!(field(&rows[0], "org"), Some("secondary"));
        assert_eq!(field(&rows[0], "depth"), Some("1"));
        assert_eq!(field(&rows[0], "p50_ms"), Some("1.125"));
        assert_eq!(field(&rows[0], "missing"), None);
    }

    #[test]
    fn keys_io_latency_rows() {
        let rows = parse_rows(SAMPLE).expect("rows");
        let k = row_key(&rows[1], RowFormat::IoLatency).expect("key");
        assert_eq!(k.org, "cluster");
        assert_eq!(k.policy, "elevator");
        assert_eq!(k.depth, 16);
        // Decluster keying fails: no stripe field.
        assert!(row_key(&rows[1], RowFormat::Decluster).is_none());
    }

    #[test]
    fn keys_decluster_rows() {
        let row = "    {\"org\": \"primary\", \"stripe\": \"region_hash\", \
                   \"policy\": \"fcfs\", \"arms\": 4, \"iops\": 100.25}";
        let k = row_key(row, RowFormat::Decluster).expect("key");
        assert_eq!(k.stripe, "region_hash");
        assert_eq!(k.arms, 4);
    }
}

//! Declarative dataset synthesis for scenarios.
//!
//! A [`Dataset`] names *what* to load — the scenario driver decides how
//! many databases to split it across and materializes each database's
//! share deterministically. The two families:
//!
//! - [`Dataset::grid`] — the benchmark binaries' deterministic polyline
//!   lattice (a `√n × √n` grid of short three-point streets). Database
//!   *d* of a multi-database scenario is phase-shifted by a per-database
//!   salt, exactly as the `decluster` benchmark builds its files.
//! - [`Dataset::uniform`] — seeded-RNG polylines scattered uniformly
//!   over the unit square, with a configurable segment count.

use spatialdb::geom::{Geometry, Point, Polyline};
use spatialdb_data::rng::SmallRng;

/// A reproducible synthetic dataset: every materialization of the same
/// dataset with the same salt and seed yields the same objects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dataset {
    kind: DatasetKind,
    objects: u64,
    segments: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum DatasetKind {
    Grid,
    Uniform,
}

impl Dataset {
    /// The deterministic polyline lattice of the benchmark binaries:
    /// `objects` three-point streets on a `√n × √n` grid.
    pub fn grid(objects: u64) -> Self {
        Dataset {
            kind: DatasetKind::Grid,
            objects,
            segments: 2,
        }
    }

    /// `objects` seeded-random polylines uniform over the unit square.
    pub fn uniform(objects: u64) -> Self {
        Dataset {
            kind: DatasetKind::Uniform,
            objects,
            segments: 2,
        }
    }

    /// Number of segments per generated polyline (uniform datasets
    /// only; the grid lattice is fixed at two segments). Must be
    /// nonzero.
    #[must_use]
    pub fn polyline_segments(mut self, segments: usize) -> Self {
        assert!(segments > 0, "a polyline needs at least one segment");
        self.segments = segments;
        self
    }

    /// Total object count across all databases of the scenario.
    pub fn objects(&self) -> u64 {
        self.objects
    }

    /// Materialize `count` objects for one database. `salt` is the
    /// database index (phase-shifts the grid; perturbs the RNG stream);
    /// `seed` drives the uniform family.
    pub fn materialize(&self, count: u64, salt: u64, seed: u64) -> Vec<(u64, Geometry)> {
        match self.kind {
            DatasetKind::Grid => grid_objects(count, salt),
            DatasetKind::Uniform => uniform_objects(count, salt, seed, self.segments),
        }
    }
}

/// The benchmark binaries' lattice, byte-identical to their `load_db`
/// helpers: object `i` starts at `(((i + 17·salt) mod side)/side,
/// (i div side)/side)` and runs two short segments east.
fn grid_objects(n: u64, salt: u64) -> Vec<(u64, Geometry)> {
    let side = (n as f64).sqrt().ceil() as u64;
    (0..n)
        .map(|i| {
            let x = ((i + salt * 17) % side) as f64 / side as f64;
            let y = (i / side) as f64 / side as f64;
            let line = Polyline::new(vec![
                Point::new(x, y),
                Point::new(x + 0.6 / side as f64, y + 0.3 / side as f64),
                Point::new(x + 1.2 / side as f64, y),
            ]);
            (i, Geometry::from(line))
        })
        .collect()
}

/// Seeded-random polylines: a uniform start point followed by
/// `segments` short random steps, clamped to the unit square.
fn uniform_objects(n: u64, salt: u64, seed: u64, segments: usize) -> Vec<(u64, Geometry)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (0..n)
        .map(|i| {
            let mut x = rng.next_f64();
            let mut y = rng.next_f64();
            let mut pts = Vec::with_capacity(segments + 1);
            pts.push(Point::new(x, y));
            for _ in 0..segments {
                x = (x + (rng.next_f64() - 0.5) * 0.02).clamp(0.0, 1.0);
                y = (y + (rng.next_f64() - 0.5) * 0.02).clamp(0.0, 1.0);
                pts.push(Point::new(x, y));
            }
            (i, Geometry::from(Polyline::new(pts)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatialdb::geom::HasMbr;

    #[test]
    fn grid_matches_bench_formula() {
        let objects = Dataset::grid(9).materialize(9, 0, 0);
        assert_eq!(objects.len(), 9);
        // side = 3; object 4 sits at ((4 % 3)/3, (4 / 3)/3) = (1/3, 1/3).
        let mbr = objects[4].1.mbr();
        assert!((mbr.xmin - 1.0 / 3.0).abs() < 1e-12);
        assert!((mbr.ymin - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn grid_salt_phase_shifts() {
        let a = Dataset::grid(100).materialize(100, 0, 0);
        let b = Dataset::grid(100).materialize(100, 1, 0);
        assert_ne!(a[0].1.mbr().xmin, b[0].1.mbr().xmin);
        // Same salt reproduces byte-identically.
        let a2 = Dataset::grid(100).materialize(100, 0, 0);
        assert_eq!(a[0].1.mbr(), a2[0].1.mbr());
    }

    #[test]
    fn uniform_is_seed_deterministic_and_bounded() {
        let d = Dataset::uniform(50).polyline_segments(8);
        let a = d.materialize(50, 0, 42);
        let b = d.materialize(50, 0, 42);
        let c = d.materialize(50, 0, 43);
        assert_eq!(a.len(), 50);
        for (i, (id, g)) in a.iter().enumerate() {
            assert_eq!(*id, i as u64);
            let m = g.mbr();
            assert!(m.xmin >= 0.0 && m.xmax <= 1.0);
            assert!(m.ymin >= 0.0 && m.ymax <= 1.0);
            assert_eq!(m, b[i].1.mbr());
        }
        assert_ne!(a[0].1.mbr(), c[0].1.mbr());
    }
}

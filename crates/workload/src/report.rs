//! The result of a scenario run: per-cell metrics, conservation
//! records, and chainable assertions.
//!
//! A [`ScenarioReport`] is pure data — every field is derived from the
//! simulated clock and the deterministic filter pass, so the same
//! scenario at any thread count renders the same report byte for byte
//! ([`ScenarioReport::to_json`] is the determinism contract's witness).

use crate::golden::{self, RowFormat};
use spatialdb::disk::IoStats;
use spatialdb::report::LatencySummary;
use spatialdb::storage::OrganizationKind;
use spatialdb::{ArmPolicy, StripePolicy};
use std::fmt::Write as _;

/// Human label of an organization, as used in the benchmark JSON.
pub fn org_label(kind: OrganizationKind) -> &'static str {
    match kind {
        OrganizationKind::Secondary => "secondary",
        OrganizationKind::Primary => "primary",
        OrganizationKind::Cluster => "cluster",
    }
}

/// Human label of an arm scheduling policy, as used in the benchmark
/// JSON.
pub fn policy_label(policy: ArmPolicy) -> &'static str {
    match policy {
        ArmPolicy::Fcfs => "fcfs",
        ArmPolicy::Elevator => "elevator",
    }
}

/// Human label of a stripe policy, as used in the benchmark JSON.
pub fn stripe_label(stripe: StripePolicy) -> &'static str {
    match stripe {
        StripePolicy::RoundRobin => "round_robin",
        StripePolicy::RegionHash => "region_hash",
        StripePolicy::MbrLocality => "mbr_locality",
    }
}

/// One cell of a scenario's sweep grid: one `(organization, depth,
/// policy, arms, stripe)` point, with the latency and throughput
/// metrics of its timed replay.
#[derive(Clone, Copy, Debug)]
pub struct Cell {
    /// Storage organization the databases were built with.
    pub org: OrganizationKind,
    /// Outstanding-request window of the replay.
    pub depth: usize,
    /// Arm scheduling policy.
    pub policy: ArmPolicy,
    /// Number of disk arms the replay declustered across.
    pub arms: usize,
    /// Region → arm stripe policy.
    pub stripe: StripePolicy,
    /// End-to-end per-query latency distribution.
    pub latency: LatencySummary,
    /// Completion time of the last query (simulated ms).
    pub makespan_ms: f64,
    /// Total arm service time across all queries (simulated ms).
    pub service_ms: f64,
    /// Total disk requests replayed.
    pub requests: u64,
    /// Arms that serviced at least one request.
    pub busy_arms: usize,
    /// Highest per-arm utilization.
    pub max_util: f64,
    /// Aggregate throughput: requests / makespan, per second.
    pub iops: f64,
    /// Open-arrival spacing the replay used (0 for closed bursts).
    pub inter_arrival_ms: f64,
}

impl Cell {
    /// This cell as a row of `BENCH_io_latency.json`, byte-identical to
    /// the `io_latency` binary's formatting.
    pub fn io_latency_row(&self) -> String {
        format!(
            "    {{\"org\": \"{}\", \"policy\": \"{}\", \"depth\": {}, \
             \"inter_arrival_ms\": {:.4}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
             \"makespan_ms\": {:.3}, \"service_ms\": {:.3}, \
             \"requests\": {}}}",
            org_label(self.org),
            policy_label(self.policy),
            self.depth,
            self.inter_arrival_ms,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.mean,
            self.makespan_ms,
            self.service_ms,
            self.requests,
        )
    }

    /// This cell as a row of `BENCH_decluster.json`, byte-identical to
    /// the `decluster` binary's formatting.
    pub fn decluster_row(&self) -> String {
        format!(
            "    {{\"org\": \"{}\", \"stripe\": \"{}\", \"policy\": \"{}\", \
             \"arms\": {}, \"busy_arms\": {}, \"requests\": {}, \
             \"inter_arrival_ms\": {:.4}, \
             \"makespan_ms\": {:.3}, \"iops\": {:.2}, \
             \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}, \"max_util\": {:.3}}}",
            org_label(self.org),
            stripe_label(self.stripe),
            policy_label(self.policy),
            self.arms,
            self.busy_arms,
            self.requests,
            self.inter_arrival_ms,
            self.makespan_ms,
            self.iops,
            self.latency.mean,
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.max_util,
        )
    }

    /// Format this cell in either benchmark row shape.
    pub fn row(&self, format: RowFormat) -> String {
        match format {
            RowFormat::IoLatency => self.io_latency_row(),
            RowFormat::Decluster => self.decluster_row(),
        }
    }
}

/// An accounting cross-check recorded around one phase of the run:
/// the workspace disk's global counter delta must equal the sum of the
/// per-query deltas attributed to individual operations.
#[derive(Clone, Copy, Debug)]
pub struct Conservation {
    /// Sum of the per-operation [`IoStats`] deltas.
    pub attributed: IoStats,
    /// The workspace disk's global delta over the same span.
    pub global: IoStats,
}

impl Conservation {
    /// `true` when every integer counter matches exactly and the
    /// accumulated `io_ms` agrees within floating-point tolerance.
    pub fn holds(&self) -> bool {
        let a = &self.attributed;
        let g = &self.global;
        a.read_requests == g.read_requests
            && a.pages_read == g.pages_read
            && a.write_requests == g.write_requests
            && a.pages_written == g.pages_written
            && a.seeks == g.seeks
            && a.latencies == g.latencies
            && (a.io_ms - g.io_ms).abs() <= 1e-6 * g.io_ms.abs().max(1.0)
    }
}

/// Outcome of one organization's mixed-operation stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct MixOutcome {
    /// Storage organization the stream ran against.
    pub org: Option<OrganizationKind>,
    /// Window queries executed.
    pub windows: usize,
    /// Point queries executed.
    pub points: usize,
    /// Spatial joins executed.
    pub joins: usize,
    /// Inserts executed.
    pub inserts: usize,
    /// Deletes executed (including deliberate misses on an empty
    /// live-id set).
    pub deletes: usize,
    /// Total exact answers across all queries of the stream.
    pub results: u64,
    /// Sum of the per-operation I/O deltas.
    pub io: IoStats,
}

/// Everything a scenario run produced. Render with
/// [`to_json`](ScenarioReport::to_json), interrogate with
/// [`cells`](ScenarioReport::cells), or gate with the chainable
/// `assert_*` methods.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Total objects loaded (across all databases).
    pub objects: u64,
    /// Window queries per sweep cell.
    pub queries: usize,
    /// Databases sharing the workspace.
    pub databases: usize,
    /// Sweep cells in grid order.
    pub cells: Vec<Cell>,
    /// Per-cell accounting cross-checks, parallel to `cells`.
    pub conservation: Vec<Conservation>,
    /// Mixed-stream outcomes, one per organization (empty when the
    /// scenario declared no mix).
    pub mixes: Vec<MixOutcome>,
    /// Accounting cross-checks of the mixed streams, parallel to
    /// `mixes`.
    pub mix_conservation: Vec<Conservation>,
}

impl ScenarioReport {
    /// Sweep cells in grid order (organizations outermost, then
    /// stripes, depths, policies, arms innermost).
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// The cell at one grid point, if the sweep visited it.
    pub fn cell(
        &self,
        org: OrganizationKind,
        depth: usize,
        policy: ArmPolicy,
        arms: usize,
        stripe: StripePolicy,
    ) -> Option<&Cell> {
        self.cells.iter().find(|c| {
            c.org == org
                && c.depth == depth
                && c.policy == policy
                && c.arms == arms
                && c.stripe == stripe
        })
    }

    /// Deterministic JSON rendering: fixed field order, fixed float
    /// precision, no timestamps — the same scenario and seed yield the
    /// same string at any thread count.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"scenario\": \"{}\",\n  \"objects\": {},\n  \"queries\": {},\n  \
             \"databases\": {},\n  \"cells\": [\n",
            self.name, self.objects, self.queries, self.databases
        );
        let rows: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"org\": \"{}\", \"stripe\": \"{}\", \"policy\": \"{}\", \
                     \"depth\": {}, \"arms\": {}, \"inter_arrival_ms\": {:.4}, \
                     \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
                     \"mean_ms\": {:.3}, \"makespan_ms\": {:.3}, \"service_ms\": {:.3}, \
                     \"iops\": {:.2}, \"busy_arms\": {}, \"max_util\": {:.3}, \
                     \"requests\": {}}}",
                    org_label(c.org),
                    stripe_label(c.stripe),
                    policy_label(c.policy),
                    c.depth,
                    c.arms,
                    c.inter_arrival_ms,
                    c.latency.p50,
                    c.latency.p95,
                    c.latency.p99,
                    c.latency.mean,
                    c.makespan_ms,
                    c.service_ms,
                    c.iops,
                    c.busy_arms,
                    c.max_util,
                    c.requests,
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]");
        if !self.mixes.is_empty() {
            out.push_str(",\n  \"mix\": [\n");
            let rows: Vec<String> = self
                .mixes
                .iter()
                .map(|m| {
                    format!(
                        "    {{\"org\": \"{}\", \"windows\": {}, \"points\": {}, \
                         \"joins\": {}, \"inserts\": {}, \"deletes\": {}, \
                         \"results\": {}, \
                         \"read_requests\": {}, \"pages_read\": {}}}",
                        m.org.map_or("?", org_label),
                        m.windows,
                        m.points,
                        m.joins,
                        m.inserts,
                        m.deletes,
                        m.results,
                        m.io.read_requests,
                        m.io.pages_read,
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Assert every cell's p99 latency is below `ms`. Chainable.
    ///
    /// # Panics
    ///
    /// Panics naming the first offending cell.
    pub fn assert_p99_under_ms(&self, ms: f64) -> &Self {
        for c in &self.cells {
            assert!(
                c.latency.p99 < ms,
                "scenario '{}': cell {}/{}/{} depth {} arms {} has p99 {:.3} ms >= {ms} ms",
                self.name,
                org_label(c.org),
                stripe_label(c.stripe),
                policy_label(c.policy),
                c.depth,
                c.arms,
                c.latency.p99,
            );
        }
        self
    }

    /// Assert the accounting identity held for every phase that
    /// recorded one: the workspace's global I/O counter delta equals
    /// the sum of the per-operation deltas (integer counters exactly,
    /// `io_ms` within floating-point tolerance). Chainable.
    ///
    /// # Panics
    ///
    /// Panics naming the first phase whose books don't balance.
    pub fn assert_stats_conserved(&self) -> &Self {
        for (i, c) in self.conservation.iter().enumerate() {
            assert!(
                c.holds(),
                "scenario '{}': cell {i} leaks I/O accounting \
                 (attributed {:?} vs global {:?})",
                self.name,
                c.attributed,
                c.global,
            );
        }
        for (i, c) in self.mix_conservation.iter().enumerate() {
            assert!(
                c.holds(),
                "scenario '{}': mix stream {i} leaks I/O accounting \
                 (attributed {:?} vs global {:?})",
                self.name,
                c.attributed,
                c.global,
            );
        }
        self
    }

    /// Assert every cell of this report reproduces its row in a
    /// checked-in benchmark golden file **byte for byte**. Cells are
    /// matched by key (`org`/`policy`/`depth` for
    /// [`RowFormat::IoLatency`]; `org`/`stripe`/`policy`/`arms` for
    /// [`RowFormat::Decluster`]), so a scenario sweeping a subset of
    /// the golden grid still verifies exactly. Chainable.
    ///
    /// # Panics
    ///
    /// Panics when the golden file is missing, a cell has no matching
    /// golden row, or a matched row differs.
    pub fn assert_matches_golden(
        &self,
        path: impl AsRef<std::path::Path>,
        format: RowFormat,
    ) -> &Self {
        let path = path.as_ref();
        let golden_rows =
            golden::load_rows(path).unwrap_or_else(|e| panic!("golden {}: {e}", path.display()));
        for cell in &self.cells {
            let row = cell.row(format);
            let key = golden::row_key(&row, format)
                .unwrap_or_else(|| panic!("unkeyable generated row: {row}"));
            let matched = golden_rows
                .iter()
                .find(|g| golden::row_key(g, format).as_ref() == Some(&key))
                .unwrap_or_else(|| {
                    panic!(
                        "golden {}: no row for cell {key:?} (scenario '{}')",
                        path.display(),
                        self.name
                    )
                });
            assert!(
                *matched == row,
                "scenario '{}' diverges from golden {} at {key:?}:\n  golden: {matched}\n  \
                 harness: {row}",
                self.name,
                path.display(),
            );
        }
        self
    }
}

//! The declarative scenario builder and driver.
//!
//! A [`Scenario`] declares a complete experiment — dataset, engine
//! configuration, window sweep, arrival discipline, replay grid, and
//! optionally a mixed operation stream — and [`run`](Scenario::run)
//! executes it: build the workspace from one [`EngineConfig`], bulk
//! load every database, sweep the grid cell by cell through the
//! unified [`Workspace::run_batch`] entry point, and fold everything
//! into a [`ScenarioReport`].
//!
//! The driver reproduces the benchmark binaries exactly: the same
//! deterministic datasets, the same window sweeps, the same
//! open-arrival spacing derived from the same traced filter pass — so
//! a scenario's cells match the checked-in `BENCH_*.json` rows byte
//! for byte ([`ScenarioReport::assert_matches_golden`]).

use crate::dataset::Dataset;
use crate::mix::{run_mix, Mix};
use crate::report::{Cell, Conservation, ScenarioReport};
use spatialdb::geom::Rect;
use spatialdb::report::summarize_latencies;
use spatialdb::storage::{OrganizationKind, WindowTechnique};
use spatialdb::{
    ArmPolicy, Arrival, DbOptions, EngineConfig, ExecPlan, OverlapConfig, SpatialDatabase,
    StripePolicy, Workspace,
};

/// The benchmark binaries' deterministic window sweep: `count` windows
/// whose sizes cycle with period `size_period` between `size_base` and
/// `size_base + size_amp`, positions raking across the unit square.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowSweep {
    count: usize,
    size_base: f64,
    size_amp: f64,
    size_period: usize,
}

impl WindowSweep {
    /// A sweep of `count` windows with the `io_latency` benchmark's
    /// size cycle (0.04 … 0.26, period 7).
    pub fn new(count: usize) -> Self {
        WindowSweep {
            count,
            size_base: 0.04,
            size_amp: 0.22,
            size_period: 7,
        }
    }

    /// Smallest window side length.
    #[must_use]
    pub fn size_base(mut self, base: f64) -> Self {
        self.size_base = base;
        self
    }

    /// Size-cycle amplitude (largest side = base + amp).
    #[must_use]
    pub fn size_amp(mut self, amp: f64) -> Self {
        self.size_amp = amp;
        self
    }

    /// Size-cycle period. Must be nonzero.
    #[must_use]
    pub fn size_period(mut self, period: usize) -> Self {
        assert!(period > 0, "size period must be nonzero");
        self.size_period = period;
        self
    }

    /// Number of windows.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Materialize the sweep, byte-identical to the binaries'
    /// `workload` helpers.
    pub fn generate(&self) -> Vec<Rect> {
        let n = self.count;
        let period = self.size_period as f64;
        (0..n)
            .map(|i| {
                let f = i as f64 / n as f64;
                let size =
                    self.size_base + self.size_amp * ((i % self.size_period) as f64 / period);
                let x = (f * 13.0) % (1.0 - size);
                let y = (f * 7.0) % (1.0 - size);
                Rect::new(x, y, x + size, y + size)
            })
            .collect()
    }
}

/// A declarative experiment: build it fluently, then [`run`](Scenario::run).
///
/// ```no_run
/// use spatialdb::{Arrival, EngineConfig};
/// use spatialdb_workload::{Dataset, Mix, Scenario, SchedPolicy, WindowSweep};
///
/// let report = Scenario::new("fig-like")
///     .dataset(Dataset::uniform(10_000).polyline_segments(8))
///     .engine(EngineConfig::default().buffer_pages(1024))
///     .windows(WindowSweep::new(96))
///     .arrivals(Arrival::open(0.7))
///     .mix(Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1))
///     .depth(8)
///     .policy(SchedPolicy::Elevator)
///     .run();
/// report.assert_p99_under_ms(10_000.0).assert_stats_conserved();
/// ```
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    dataset: Dataset,
    databases: usize,
    engine: EngineConfig,
    organizations: Vec<OrganizationKind>,
    technique: WindowTechnique,
    windows: WindowSweep,
    arrival: Arrival,
    depths: Vec<usize>,
    policies: Vec<ArmPolicy>,
    arms_grid: Option<Vec<usize>>,
    stripes: Option<Vec<StripePolicy>>,
    threads: usize,
    seed: u64,
    mix: Option<Mix>,
    operations: usize,
}

impl Scenario {
    /// Start a scenario. The defaults are a one-database grid dataset
    /// of 2 000 objects, the default engine, all three organizations,
    /// a 64-window sweep, closed (burst) arrivals, and a single
    /// depth-4 elevator cell per organization.
    pub fn new(name: impl Into<String>) -> Self {
        Scenario {
            name: name.into(),
            dataset: Dataset::grid(2_000),
            databases: 1,
            engine: EngineConfig::default(),
            organizations: vec![
                OrganizationKind::Secondary,
                OrganizationKind::Primary,
                OrganizationKind::Cluster,
            ],
            technique: WindowTechnique::Slm,
            windows: WindowSweep::new(64),
            arrival: Arrival::Burst,
            depths: vec![4],
            policies: vec![ArmPolicy::Elevator],
            arms_grid: None,
            stripes: None,
            threads: 2,
            seed: 42,
            mix: None,
            operations: 64,
        }
    }

    /// What to load (total objects, split evenly across the databases).
    #[must_use]
    pub fn dataset(mut self, dataset: Dataset) -> Self {
        self.dataset = dataset;
        self
    }

    /// How many databases share the workspace (regions decluster
    /// across the arm array per database). Must be nonzero.
    #[must_use]
    pub fn databases(mut self, n: usize) -> Self {
        assert!(n > 0, "a scenario needs at least one database");
        self.databases = n;
        self
    }

    /// The one configuration of the simulated machine.
    #[must_use]
    pub fn engine(mut self, config: EngineConfig) -> Self {
        self.engine = config;
        self
    }

    /// Which storage organizations to sweep (default: all three).
    #[must_use]
    pub fn organizations(mut self, kinds: &[OrganizationKind]) -> Self {
        assert!(!kinds.is_empty(), "need at least one organization");
        self.organizations = kinds.to_vec();
        self
    }

    /// Window-query technique (default: SLM).
    #[must_use]
    pub fn technique(mut self, technique: WindowTechnique) -> Self {
        self.technique = technique;
        self
    }

    /// The window sweep each cell replays.
    #[must_use]
    pub fn windows(mut self, sweep: WindowSweep) -> Self {
        assert!(sweep.count() > 0, "a sweep needs at least one window");
        self.windows = sweep;
        self
    }

    /// Arrival discipline of the timed replay (default: closed burst).
    #[must_use]
    pub fn arrivals(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Replay with a single outstanding-request depth.
    #[must_use]
    pub fn depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be nonzero");
        self.depths = vec![depth];
        self
    }

    /// Sweep several outstanding-request depths.
    #[must_use]
    pub fn sweep_depths(mut self, depths: &[usize]) -> Self {
        assert!(!depths.is_empty() && depths.iter().all(|&d| d > 0));
        self.depths = depths.to_vec();
        self
    }

    /// Replay under a single arm scheduling policy.
    #[must_use]
    pub fn policy(mut self, policy: ArmPolicy) -> Self {
        self.policies = vec![policy];
        self
    }

    /// Sweep several arm scheduling policies.
    #[must_use]
    pub fn sweep_policies(mut self, policies: &[ArmPolicy]) -> Self {
        assert!(!policies.is_empty());
        self.policies = policies.to_vec();
        self
    }

    /// Sweep several arm counts (default: the engine's arm count).
    #[must_use]
    pub fn sweep_arms(mut self, arms: &[usize]) -> Self {
        assert!(!arms.is_empty() && arms.iter().all(|&a| a > 0));
        self.arms_grid = Some(arms.to_vec());
        self
    }

    /// Sweep several stripe policies (default: the engine's stripe).
    #[must_use]
    pub fn sweep_stripes(mut self, stripes: &[StripePolicy]) -> Self {
        assert!(!stripes.is_empty());
        self.stripes = Some(stripes.to_vec());
        self
    }

    /// Executor threads for the filter/refinement phases. The report
    /// is byte-identical at any value (the determinism contract).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Seed for dataset synthesis and the mixed stream.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// After the sweep, run a mixed operation stream per organization
    /// under the given weights ([`operations`](Scenario::operations)
    /// sets its length; default 64).
    #[must_use]
    pub fn mix(mut self, mix: Mix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Length of the mixed operation stream (only meaningful with
    /// [`mix`](Scenario::mix)).
    #[must_use]
    pub fn operations(mut self, operations: usize) -> Self {
        self.operations = operations;
        self
    }

    /// Execute the scenario.
    ///
    /// # Panics
    ///
    /// Panics if the engine configuration is invalid
    /// ([`EngineConfig::validate`]) or a builder invariant is violated.
    pub fn run(self) -> ScenarioReport {
        self.engine
            .validate()
            .unwrap_or_else(|e| panic!("scenario '{}': invalid engine config: {e}", self.name));
        let windows = self.windows.generate();
        let per_db = self.dataset.objects() / self.databases as u64;
        let arms_grid = self
            .arms_grid
            .clone()
            .unwrap_or_else(|| vec![self.engine.arms]);
        let stripes = self
            .stripes
            .clone()
            .unwrap_or_else(|| vec![self.engine.stripe]);

        let mut report = ScenarioReport {
            name: self.name.clone(),
            objects: self.dataset.objects(),
            queries: windows.len(),
            databases: self.databases,
            cells: Vec::new(),
            conservation: Vec::new(),
            mixes: Vec::new(),
            mix_conservation: Vec::new(),
        };

        for &kind in &self.organizations {
            let ws = Workspace::from_config(self.engine);
            let load_threads = std::thread::available_parallelism().map_or(1, |t| t.get());
            let mut dbs: Vec<SpatialDatabase> = (0..self.databases)
                .map(|d| {
                    let mut db = ws.create_database(DbOptions::new(kind).technique(self.technique));
                    let objects = self.dataset.materialize(per_db, d as u64, self.seed);
                    ws.bulk_load_par(&mut db, objects, load_threads);
                    db.finish_loading();
                    db
                })
                .collect();

            // The replay grid. Nesting order (stripes → depths →
            // policies → arms) reproduces both benchmark binaries' row
            // orders once the singleton dimensions collapse.
            for &stripe in &stripes {
                for &depth in &self.depths {
                    for &policy in &self.policies {
                        for &arms in &arms_grid {
                            let (cell, conservation) = self.run_cell(
                                &ws, &mut dbs, &windows, kind, depth, policy, arms, stripe,
                            );
                            report.cells.push(cell);
                            report.conservation.push(conservation);
                        }
                    }
                }
            }

            if let Some(mix) = &self.mix {
                let (mut outcome, conservation) = run_mix(
                    &ws,
                    &mut dbs,
                    mix,
                    self.operations,
                    self.threads,
                    self.seed,
                    per_db,
                );
                outcome.org = Some(kind);
                report.mixes.push(outcome);
                report.mix_conservation.push(conservation);
            }
        }
        report
    }

    /// One grid cell: reset the caches to the same cold state, re-run
    /// the traced filter pass (trace-identical every time), and replay
    /// through the arm array.
    #[allow(clippy::too_many_arguments)]
    fn run_cell(
        &self,
        ws: &Workspace,
        dbs: &mut [SpatialDatabase],
        windows: &[Rect],
        kind: OrganizationKind,
        depth: usize,
        policy: ArmPolicy,
        arms: usize,
        stripe: StripePolicy,
    ) -> (Cell, Conservation) {
        for db in dbs.iter_mut() {
            db.store_mut().begin_query();
        }
        let global_before = ws.disk().stats();
        let n_dbs = dbs.len();
        let batch: Vec<_> = windows
            .iter()
            .enumerate()
            .map(|(i, w)| dbs[i % n_dbs].query().window(*w).technique(self.technique))
            .collect();
        let out = ws.run_batch(
            batch,
            ExecPlan::threads(self.threads).timed(OverlapConfig {
                depth,
                policy,
                arrival: self.arrival,
                arms,
                stripe,
                ..OverlapConfig::default()
            }),
        );

        let mut attributed = spatialdb::IoStats::default();
        let mut latencies = Vec::with_capacity(out.len());
        let mut makespan = 0.0f64;
        let mut service = 0.0f64;
        let mut requests = 0u64;
        for q in out.outcomes() {
            attributed = attributed.plus(&q.io_stats());
            let lat = q.latency_stats().expect("timed batch attaches latency");
            latencies.push(lat.latency_ms());
            makespan = makespan.max(lat.completed_ms);
            service += lat.service_ms;
            requests += lat.requests;
        }
        let summary = summarize_latencies(&mut latencies);
        let busy_arms = out.arm_stats().iter().filter(|a| a.serviced > 0).count();
        let max_util = out
            .arm_stats()
            .iter()
            .map(|a| a.utilization())
            .fold(0.0, f64::max);
        let iops = if makespan > 0.0 {
            requests as f64 / makespan * 1000.0
        } else {
            0.0
        };
        let cell = Cell {
            org: kind,
            depth,
            policy,
            arms,
            stripe,
            latency: summary,
            makespan_ms: makespan,
            service_ms: service,
            requests,
            busy_arms,
            max_util,
            iops,
            inter_arrival_ms: out.inter_arrival_ms(),
        };
        let conservation = Conservation {
            attributed,
            global: ws.disk().stats().since(&global_before),
        };
        (cell, conservation)
    }
}

//! # spatialdb-workload
//!
//! A declarative scenario harness over the `spatialdb` engine: declare
//! *what* to measure — dataset, engine configuration, window sweep,
//! arrival discipline, replay grid, mixed operation stream — and the
//! driver handles *how*: workspace construction from one
//! [`EngineConfig`](spatialdb::EngineConfig), deterministic bulk
//! loading, the traced filter pass, the arm-array replay, and report
//! assembly.
//!
//! ```no_run
//! use spatialdb::{Arrival, EngineConfig, Routing, StripePolicy};
//! use spatialdb_workload::{Dataset, Mix, Scenario, SchedPolicy};
//!
//! let report = Scenario::new("fig-like")
//!     .dataset(Dataset::uniform(10_000).polyline_segments(8))
//!     .engine(
//!         EngineConfig::default()
//!             .shards(8)
//!             .routing(Routing::ByRegion)
//!             .arms(4, StripePolicy::RoundRobin),
//!     )
//!     .arrivals(Arrival::open(0.7))
//!     .mix(Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1))
//!     .depth(8)
//!     .policy(SchedPolicy::Elevator)
//!     .run();
//!
//! report
//!     .assert_p99_under_ms(50_000.0)
//!     .assert_stats_conserved();
//! ```
//!
//! The harness is exact where it matters: the same scenario and seed
//! produce a byte-identical [`ScenarioReport`] at any thread count,
//! and the benchmark-shaped scenarios reproduce the checked-in
//! `BENCH_io_latency.json` / `BENCH_decluster.json` rows byte for byte
//! ([`ScenarioReport::assert_matches_golden`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod golden;
pub mod mix;
pub mod report;
pub mod scenario;

pub use dataset::Dataset;
pub use golden::RowFormat;
pub use mix::Mix;
pub use report::{org_label, policy_label, stripe_label, Cell, MixOutcome, ScenarioReport};
pub use scenario::{Scenario, WindowSweep};

/// The arm scheduling policy, under the name scenarios speak.
pub use spatialdb::ArmPolicy as SchedPolicy;

//! Mixed operation streams: a seeded, weighted interleaving of window
//! queries, point queries, spatial joins, inserts, and deletes.
//!
//! The stream is generated serially from one RNG, then executed through
//! the engine's mixed-stream mode
//! ([`run_stream`](spatialdb::stream::run_stream)): every operation's
//! I/O-charging half — including the `&self` shadow-paging commits —
//! runs in stream order on one thread, while the CPU-bound refinements
//! fan across the worker pool **concurrently with later commits**. No
//! serial barriers, and the result is byte-identical at 1 thread and
//! at 8.
//!
//! Delete targets are drawn from the live id universe: the generator
//! emits a raw draw, and [`run_mix`] resolves it against a running
//! model of each database's live ids (initialized from
//! [`SpatialDatabase::object_ids`], updated by the stream's own
//! inserts and deletes) — deterministic, and never dependent on
//! execution timing.

use crate::report::{Conservation, MixOutcome};
use spatialdb::geom::{Point, Polyline, Rect};
use spatialdb::stream::{run_stream, StreamOp};
use spatialdb::{SpatialDatabase, Workspace};
use spatialdb_data::rng::SmallRng;

/// Relative weights of the five operation kinds. Build with the
/// fluent setters; at least one weight must end up positive.
///
/// ```
/// use spatialdb_workload::Mix;
/// let mix = Mix::new()
///     .window(0.5)
///     .point(0.2)
///     .join(0.1)
///     .insert(0.1)
///     .delete(0.1);
/// # let _ = mix;
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mix {
    window: f64,
    point: f64,
    join: f64,
    insert: f64,
    delete: f64,
}

impl Mix {
    /// An empty mix (all weights zero — set at least one).
    pub fn new() -> Self {
        Mix::default()
    }

    /// Relative weight of window queries.
    #[must_use]
    pub fn window(mut self, weight: f64) -> Self {
        self.window = weight;
        self
    }

    /// Relative weight of point queries.
    #[must_use]
    pub fn point(mut self, weight: f64) -> Self {
        self.point = weight;
        self
    }

    /// Relative weight of spatial joins.
    #[must_use]
    pub fn join(mut self, weight: f64) -> Self {
        self.join = weight;
        self
    }

    /// Relative weight of inserts.
    #[must_use]
    pub fn insert(mut self, weight: f64) -> Self {
        self.insert = weight;
        self
    }

    /// Relative weight of deletes (targets drawn from the live ids).
    #[must_use]
    pub fn delete(mut self, weight: f64) -> Self {
        self.delete = weight;
        self
    }

    fn total(&self) -> f64 {
        self.window + self.point + self.join + self.insert + self.delete
    }
}

/// One generated operation of the stream. `Delete` carries a raw draw,
/// resolved against the live-id model at execution-plan time.
#[derive(Clone, Debug)]
enum Op {
    Window(usize, Rect),
    Point(usize, Point),
    Join(usize, usize),
    Insert(usize, Polyline),
    Delete(usize, u64),
}

/// Generate the deterministic operation stream.
///
/// The branch chain draws kinds in window → point → join → insert →
/// delete order, so any mix with a zero delete weight consumes the RNG
/// exactly as the four-kind generator always did — old seeds replay
/// byte-identically.
fn generate(mix: &Mix, operations: usize, databases: usize, seed: u64) -> Vec<Op> {
    let total = mix.total();
    assert!(
        total > 0.0
            && mix.window >= 0.0
            && mix.point >= 0.0
            && mix.join >= 0.0
            && mix.insert >= 0.0
            && mix.delete >= 0.0,
        "a Mix needs at least one positive weight"
    );
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x006d_6978);
    (0..operations)
        .map(|_| {
            let u = rng.next_f64() * total;
            let db = (rng.next_u64() % databases as u64) as usize;
            if u < mix.window {
                let size = 0.02 + 0.08 * rng.next_f64();
                let x = rng.next_f64() * (1.0 - size);
                let y = rng.next_f64() * (1.0 - size);
                Op::Window(db, Rect::new(x, y, x + size, y + size))
            } else if u < mix.window + mix.point {
                Op::Point(db, Point::new(rng.next_f64(), rng.next_f64()))
            } else if u < mix.window + mix.point + mix.join {
                let other = if databases > 1 {
                    (db + 1) % databases
                } else {
                    db
                };
                Op::Join(db, other)
            } else if u < mix.window + mix.point + mix.join + mix.insert {
                let x = rng.next_f64() * 0.99;
                let y = rng.next_f64() * 0.99;
                Op::Insert(
                    db,
                    Polyline::new(vec![
                        Point::new(x, y),
                        Point::new((x + 0.005).min(1.0), (y + 0.003).min(1.0)),
                        Point::new((x + 0.01).min(1.0), y),
                    ]),
                )
            } else {
                Op::Delete(db, rng.next_u64())
            }
        })
        .collect()
}

/// Execute a mixed stream against one organization's databases,
/// returning the outcome and the accounting cross-check.
pub(crate) fn run_mix(
    ws: &Workspace,
    dbs: &mut [SpatialDatabase],
    mix: &Mix,
    operations: usize,
    threads: usize,
    seed: u64,
    mut next_id: u64,
) -> (MixOutcome, Conservation) {
    let ops = generate(mix, operations, dbs.len(), seed);
    let disk = ws.disk();
    let global_before = disk.stats();
    let mut outcome = MixOutcome::default();

    // The live-id model each delete draw resolves against: seeded from
    // the databases, maintained in stream order alongside the plan.
    let mut live: Vec<Vec<u64>> = dbs.iter().map(|db| db.object_ids()).collect();
    let dbs: &[SpatialDatabase] = dbs;
    let stream: Vec<StreamOp<'_>> = ops
        .into_iter()
        .map(|op| match op {
            Op::Window(d, w) => {
                outcome.windows += 1;
                StreamOp::Window {
                    db: &dbs[d],
                    window: w,
                }
            }
            Op::Point(d, p) => {
                outcome.points += 1;
                StreamOp::Point {
                    db: &dbs[d],
                    point: p,
                }
            }
            Op::Join(a, b) => {
                outcome.joins += 1;
                StreamOp::Join {
                    left: &dbs[a],
                    right: &dbs[b],
                }
            }
            Op::Insert(d, line) => {
                outcome.inserts += 1;
                let id = next_id;
                next_id += 1;
                live[d].push(id);
                StreamOp::Insert {
                    db: &dbs[d],
                    id,
                    geometry: line.into(),
                }
            }
            Op::Delete(d, draw) => {
                outcome.deletes += 1;
                let id = if live[d].is_empty() {
                    // Nothing left to delete: a deliberate miss (the
                    // engine records `existed: false`).
                    u64::MAX
                } else {
                    let i = (draw % live[d].len() as u64) as usize;
                    live[d].swap_remove(i)
                };
                StreamOp::Delete { db: &dbs[d], id }
            }
        })
        .collect();

    let out = run_stream(stream, threads);
    outcome.results = out.results();
    outcome.io = out.aggregate_io();

    let conservation = Conservation {
        attributed: outcome.io,
        global: disk.stats().since(&global_before),
    };
    (outcome, conservation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic() {
        let mix = Mix::new()
            .window(0.5)
            .point(0.2)
            .join(0.1)
            .insert(0.1)
            .delete(0.1);
        let a = generate(&mix, 96, 3, 7);
        let b = generate(&mix, 96, 3, 7);
        assert_eq!(a.len(), 96);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // All five kinds appear under these weights at this length.
        let debug = format!("{a:?}");
        for kind in ["Window", "Point", "Join", "Insert", "Delete"] {
            assert!(debug.contains(kind), "{kind} missing from stream");
        }
    }

    #[test]
    fn zero_delete_weight_replays_the_four_kind_stream() {
        // The delete branch sits at the end of the chain: a mix without
        // deletes draws the RNG exactly as the old generator, so
        // existing seeds reproduce their streams byte for byte.
        let four = Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1);
        let ops = generate(&four, 64, 3, 7);
        assert!(!format!("{ops:?}").contains("Delete"));
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_rejected() {
        generate(&Mix::new(), 8, 1, 0);
    }
}

//! Mixed operation streams: a seeded, weighted interleaving of window
//! queries, point queries, spatial joins, and inserts.
//!
//! The stream is generated serially from one RNG, then executed in
//! stream order: maximal runs of queries go through the parallel
//! executor (whose determinism contract makes per-query statistics
//! independent of the thread count), while joins and inserts act as
//! serial barriers. The result is byte-identical at 1 thread and at 8.

use crate::report::{Conservation, MixOutcome};
use spatialdb::geom::{Point, Polyline, Rect};
use spatialdb::{ExecPlan, SpatialDatabase, Workspace};
use spatialdb_data::rng::SmallRng;

/// Relative weights of the four operation kinds. Build with the
/// fluent setters; at least one weight must end up positive.
///
/// ```
/// use spatialdb_workload::Mix;
/// let mix = Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1);
/// # let _ = mix;
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Mix {
    window: f64,
    point: f64,
    join: f64,
    insert: f64,
}

impl Mix {
    /// An empty mix (all weights zero — set at least one).
    pub fn new() -> Self {
        Mix::default()
    }

    /// Relative weight of window queries.
    #[must_use]
    pub fn window(mut self, weight: f64) -> Self {
        self.window = weight;
        self
    }

    /// Relative weight of point queries.
    #[must_use]
    pub fn point(mut self, weight: f64) -> Self {
        self.point = weight;
        self
    }

    /// Relative weight of spatial joins.
    #[must_use]
    pub fn join(mut self, weight: f64) -> Self {
        self.join = weight;
        self
    }

    /// Relative weight of inserts.
    #[must_use]
    pub fn insert(mut self, weight: f64) -> Self {
        self.insert = weight;
        self
    }

    fn total(&self) -> f64 {
        self.window + self.point + self.join + self.insert
    }
}

/// One generated operation of the stream.
#[derive(Clone, Debug)]
enum Op {
    Window(usize, Rect),
    Point(usize, Point),
    Join(usize, usize),
    Insert(usize, Polyline),
}

/// Generate the deterministic operation stream.
fn generate(mix: &Mix, operations: usize, databases: usize, seed: u64) -> Vec<Op> {
    let total = mix.total();
    assert!(
        total > 0.0 && mix.window >= 0.0 && mix.point >= 0.0 && mix.join >= 0.0,
        "a Mix needs at least one positive weight"
    );
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x006d_6978);
    (0..operations)
        .map(|_| {
            let u = rng.next_f64() * total;
            let db = (rng.next_u64() % databases as u64) as usize;
            if u < mix.window {
                let size = 0.02 + 0.08 * rng.next_f64();
                let x = rng.next_f64() * (1.0 - size);
                let y = rng.next_f64() * (1.0 - size);
                Op::Window(db, Rect::new(x, y, x + size, y + size))
            } else if u < mix.window + mix.point {
                Op::Point(db, Point::new(rng.next_f64(), rng.next_f64()))
            } else if u < mix.window + mix.point + mix.join {
                let other = if databases > 1 {
                    (db + 1) % databases
                } else {
                    db
                };
                Op::Join(db, other)
            } else {
                let x = rng.next_f64() * 0.99;
                let y = rng.next_f64() * 0.99;
                Op::Insert(
                    db,
                    Polyline::new(vec![
                        Point::new(x, y),
                        Point::new((x + 0.005).min(1.0), (y + 0.003).min(1.0)),
                        Point::new((x + 0.01).min(1.0), y),
                    ]),
                )
            }
        })
        .collect()
}

/// Execute a mixed stream against one organization's databases,
/// returning the outcome and the accounting cross-check.
pub(crate) fn run_mix(
    ws: &Workspace,
    dbs: &mut [SpatialDatabase],
    mix: &Mix,
    operations: usize,
    threads: usize,
    seed: u64,
    mut next_id: u64,
) -> (MixOutcome, Conservation) {
    let ops = generate(mix, operations, dbs.len(), seed);
    let disk = ws.disk();
    let global_before = disk.stats();
    let mut outcome = MixOutcome::default();

    // Pending query specs: flushed through the executor before any
    // serial barrier (join/insert), preserving stream order.
    enum Spec {
        Window(Rect),
        Point(Point),
    }
    let mut pending: Vec<(usize, Spec)> = Vec::new();
    let flush =
        |pending: &mut Vec<(usize, Spec)>, dbs: &[SpatialDatabase], outcome: &mut MixOutcome| {
            if pending.is_empty() {
                return;
            }
            let batch: Vec<_> = pending
                .iter()
                .map(|(d, spec)| match spec {
                    Spec::Window(w) => dbs[*d].query().window(*w),
                    Spec::Point(p) => dbs[*d].query().point(*p),
                })
                .collect();
            let out = ws.run_batch(batch, ExecPlan::threads(threads));
            for q in out.outcomes() {
                outcome.results += q.ids().len() as u64;
                outcome.io = outcome.io.plus(&q.io_stats());
            }
            pending.clear();
        };

    for op in ops {
        match op {
            Op::Window(d, w) => {
                outcome.windows += 1;
                pending.push((d, Spec::Window(w)));
            }
            Op::Point(d, p) => {
                outcome.points += 1;
                pending.push((d, Spec::Point(p)));
            }
            Op::Join(a, b) => {
                flush(&mut pending, dbs, &mut outcome);
                outcome.joins += 1;
                let before = disk.local_stats();
                let pairs = if a == b {
                    dbs[a].join(&dbs[a]).run().count()
                } else {
                    dbs[a].join(&dbs[b]).run().count()
                };
                outcome.results += pairs as u64;
                outcome.io = outcome.io.plus(&disk.local_stats().since(&before));
            }
            Op::Insert(d, line) => {
                flush(&mut pending, dbs, &mut outcome);
                outcome.inserts += 1;
                let before = disk.local_stats();
                dbs[d].insert(next_id, line);
                next_id += 1;
                outcome.io = outcome.io.plus(&disk.local_stats().since(&before));
            }
        }
    }
    flush(&mut pending, dbs, &mut outcome);

    let conservation = Conservation {
        attributed: outcome.io,
        global: disk.stats().since(&global_before),
    };
    (outcome, conservation)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_seed_deterministic() {
        let mix = Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1);
        let a = generate(&mix, 64, 3, 7);
        let b = generate(&mix, 64, 3, 7);
        assert_eq!(a.len(), 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        // All four kinds appear under these weights at this length.
        let debug = format!("{a:?}");
        for kind in ["Window", "Point", "Join", "Insert"] {
            assert!(debug.contains(kind), "{kind} missing from stream");
        }
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn empty_mix_rejected() {
        generate(&Mix::new(), 8, 1, 0);
    }
}

//! `spatialdb-analysis` — a repo-specific invariant analyzer.
//!
//! The workspace's correctness story rests on contracts no compiler
//! checks: byte-identical stats at any thread count, an acyclic
//! shard → disk lock order, no wall clock in simulated time. Two of
//! those contracts have already been broken by real bugs (the
//! HashSet-order placement flap, the flush-under-old-mapping double
//! charge), so this crate machine-checks them: a hand-rolled lexer
//! (no external dependencies — the workspace builds offline) feeds
//! six line-level rules over every `crates/*/src` file.
//!
//! Run it as `cargo run -p spatialdb-analysis --release -- crates/`;
//! it exits nonzero with `file:line: [rule] message` diagnostics.
//! Audited sites are silenced either in-source (`// lint: <waiver> —
//! why`) or via an allowlist file (see [`Allowlist`]).

pub mod lexer;
pub mod rules;

pub use rules::{analyze_source, Finding, Profile, Rule};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collect the `.rs` files under `root` that the analyzer
/// should see, sorted by path so diagnostics are deterministic.
///
/// Skips `target/` (build output), any `fixtures/` directory (the
/// analyzer's own deliberately-bad test snippets), and non-source
/// trees. The analysis crate's own sources are *included* — the
/// analyzer must hold itself to the same rules.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    if root.is_file() {
        return Ok(vec![root.to_path_buf()]);
    }
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = fs::read_dir(&dir)?
            .map(|e| e.map(|e| e.path()))
            .collect::<io::Result<_>>()?;
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if path.is_dir() {
                if matches!(name, "target" | "fixtures" | ".git") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Analyze every source file under `root` with the profile derived
/// from its path. Findings come back sorted (file, then line).
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in collect_sources(root)? {
        let label = path.to_string_lossy().into_owned();
        let source = fs::read_to_string(&path)?;
        findings.extend(analyze_source(&label, &source, Profile::for_path(&label)));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(findings)
}

/// An allowlist of audited sites, loaded from a text file.
///
/// Each non-comment line is `rule path-suffix substring…`: a finding is
/// suppressed when its rule name matches, its file path ends with the
/// suffix, and the *raw* flagged line contains the substring (so the
/// entry pins to real code and goes stale loudly if the site changes).
///
/// ```text
/// # rule      path-suffix                  line-substring
/// hash-iter   storage/src/cluster.rs       self.members.values()
/// ```
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parse an allowlist from file contents.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, char::is_whitespace);
            let (Some(rule), Some(suffix), Some(substr)) =
                (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            entries.push((
                rule.to_string(),
                suffix.to_string(),
                substr.trim().to_string(),
            ));
        }
        Allowlist { entries }
    }

    /// Load from a path; a missing file is an empty allowlist.
    pub fn load(path: &Path) -> Allowlist {
        match fs::read_to_string(path) {
            Ok(text) => Allowlist::parse(&text),
            Err(_) => Allowlist::default(),
        }
    }

    /// Whether `finding` (whose flagged raw line is `raw_line`) is an
    /// audited site this allowlist suppresses.
    pub fn allows(&self, finding: &Finding, raw_line: &str) -> bool {
        let norm = finding.file.replace('\\', "/");
        self.entries.iter().any(|(rule, suffix, substr)| {
            rule == finding.rule.name() && norm.ends_with(suffix) && raw_line.contains(substr)
        })
    }
}

/// Analyze a tree and drop allowlisted findings. Returns the surviving
/// findings, sorted.
pub fn analyze_tree_with_allowlist(root: &Path, allow: &Allowlist) -> io::Result<Vec<Finding>> {
    let mut out = Vec::new();
    for finding in analyze_tree(root)? {
        let raw_line = fs::read_to_string(&finding.file)
            .ok()
            .and_then(|src| src.lines().nth(finding.line - 1).map(str::to_string))
            .unwrap_or_default();
        if !allow.allows(&finding, &raw_line) {
            out.push(finding);
        }
    }
    Ok(out)
}

/// Filter a `git diff --name-only` listing down to the analyzer's
/// inputs: `.rs` files under one of `roots` (any file when `roots` is
/// empty), excluding the same `target/` and `fixtures/` trees
/// [`collect_sources`] skips. Paths come back sorted and deduplicated;
/// existence is **not** checked here (pure function — the CLI drops
/// deleted files before analyzing).
pub fn filter_changed_paths(name_only: &str, roots: &[PathBuf]) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = name_only
        .lines()
        .map(str::trim)
        .filter(|l| l.ends_with(".rs"))
        .filter(|l| {
            !Path::new(l)
                .components()
                .any(|c| matches!(c.as_os_str().to_str(), Some("target" | "fixtures" | ".git")))
        })
        .filter(|l| roots.is_empty() || roots.iter().any(|r| Path::new(l).starts_with(r)))
        .map(PathBuf::from)
        .collect();
    out.sort();
    out.dedup();
    out
}

/// The `.rs` files touched since `rev`, per `git diff --name-only`,
/// restricted to `roots` and to files that still exist (a deletion is
/// nothing to analyze). Errors when `git` itself fails — an unknown
/// revision should stop a pre-commit hook, not silently pass it.
pub fn changed_sources(rev: &str, roots: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let output = std::process::Command::new("git")
        .args(["diff", "--name-only", rev])
        .output()?;
    if !output.status.success() {
        return Err(io::Error::other(format!(
            "git diff --name-only {rev} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        )));
    }
    let listing = String::from_utf8_lossy(&output.stdout);
    Ok(filter_changed_paths(&listing, roots)
        .into_iter()
        .filter(|p| p.is_file())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changed_path_filtering() {
        let listing = "crates/disk/src/shard.rs\n\
                       crates/analysis/fixtures/bad.rs\n\
                       target/debug/build/foo.rs\n\
                       README.md\n\
                       crates/core/src/executor.rs\n\
                       crates/core/src/executor.rs\n\
                       docs/notes.rs\n";
        let roots = vec![PathBuf::from("crates")];
        let got = filter_changed_paths(listing, &roots);
        assert_eq!(
            got,
            vec![
                PathBuf::from("crates/core/src/executor.rs"),
                PathBuf::from("crates/disk/src/shard.rs"),
            ]
        );
        // No roots: everything .rs outside the skip dirs, docs included.
        let all = filter_changed_paths(listing, &[]);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn profile_classification() {
        let p = Profile::for_path("crates/storage/src/cluster.rs");
        assert!(p.placement_critical);
        assert!(!p.wall_clock_allowed);
        let p = Profile::for_path("crates/bench/src/bin/run.rs");
        assert!(!p.placement_critical);
        assert!(p.wall_clock_allowed);
        let p = Profile::for_path("crates/disk/src/lockdep.rs");
        assert!(p.lock_helper_module);
        let p = Profile::for_path("crates/geom/src/rect.rs");
        assert!(!p.placement_critical);
    }

    #[test]
    fn allowlist_matching() {
        let allow = Allowlist::parse(
            "# comment\n\nhash-iter storage/src/cluster.rs self.members.values()\n",
        );
        let f = Finding {
            file: "crates/storage/src/cluster.rs".to_string(),
            line: 108,
            rule: Rule::HashIter,
            message: String::new(),
        };
        assert!(allow.allows(
            &f,
            "        self.members.values().map(|p| p.num_pages).sum()"
        ));
        assert!(!allow.allows(&f, "        self.units.keys()"));
        let g = Finding {
            rule: Rule::WallClock,
            ..f
        };
        assert!(!allow.allows(&g, "self.members.values()"));
    }
}

//! The six repo-specific invariant rules.
//!
//! Each rule is a line-level pattern over the lexer's code channel; the
//! rules are deliberately lexical (no type information), so each one is
//! scoped to the places where its pattern is unambiguous and supports an
//! explicit waiver comment for audited sites.

use crate::lexer::{self, Line};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies which invariant a [`Finding`] violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a `HashMap`/`HashSet` in a placement- or
    /// stats-critical crate without an adjacent sort or waiver.
    HashIter,
    /// `Instant::now`/`SystemTime` outside `crates/bench` — wall clock
    /// must never leak into simulated time.
    WallClock,
    /// Float comparison via `partial_cmp` instead of `total_cmp` in a
    /// sort key.
    FloatSort,
    /// `.lock()`/`.try_lock()` on a raw Mutex outside the approved
    /// acquisition helpers (`lockdep.rs`).
    RawLock,
    /// Nested lock acquisitions whose lexical class order contradicts
    /// the writer → shard → arm-queue → counters → geometry → epoch
    /// hierarchy.
    LockOrder,
    /// Raw `fetch_add`/`fetch_sub` on an epoch-pin counter outside the
    /// epoch crate — pin accounting must go through the collector's
    /// guard types, or an unpaired update leaks (blocking reclamation)
    /// or frees under a live reader.
    EpochPin,
}

impl Rule {
    /// Stable rule name, used in diagnostics, waivers, and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatSort => "float-sort",
            Rule::RawLock => "raw-lock",
            Rule::LockOrder => "lock-order",
            Rule::EpochPin => "epoch-pin",
        }
    }

    /// The waiver token that suppresses this rule when it appears in a
    /// comment on the flagged line or the line above:
    /// `// lint: <token> — <why this site is safe>`.
    pub fn waiver(self) -> &'static str {
        match self {
            Rule::HashIter => "order-insensitive",
            Rule::WallClock => "wall-clock-audited",
            Rule::FloatSort => "float-order-audited",
            Rule::RawLock => "raw-lock-audited",
            Rule::LockOrder => "lock-order-audited",
            Rule::EpochPin => "epoch-pin-audited",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Which rules apply to a file, derived from its crate.
#[derive(Debug, Clone, Copy)]
pub struct Profile {
    /// Hash-iteration ordering matters here (disk, storage, rtree — the
    /// crates whose iteration order feeds placement or stats).
    pub placement_critical: bool,
    /// Wall clock is allowed (only `crates/bench`, which measures real
    /// elapsed time around whole runs).
    pub wall_clock_allowed: bool,
    /// This file *is* the approved lock-acquisition helper module, so
    /// raw `.lock()` calls are expected.
    pub lock_helper_module: bool,
    /// This file belongs to the epoch-reclamation crate, whose whole
    /// job is the raw pin accounting everyone else must not touch.
    pub epoch_manager_module: bool,
}

impl Profile {
    /// Derive the profile from a path (`…/crates/<name>/src/<file>.rs`).
    pub fn for_path(path: &str) -> Profile {
        let norm = path.replace('\\', "/");
        // Fixture snippets are deliberately bad; when the analyzer is
        // pointed at them explicitly, every rule is armed.
        if norm.split('/').any(|c| c == "fixtures") {
            return Profile::strict();
        }
        let crate_name = norm
            .split('/')
            .collect::<Vec<_>>()
            .windows(2)
            .find(|w| w[0] == "crates")
            .map(|w| w[1].to_string())
            .unwrap_or_default();
        let file_name = norm.rsplit('/').next().unwrap_or(&norm);
        Profile {
            placement_critical: matches!(crate_name.as_str(), "disk" | "storage" | "rtree"),
            wall_clock_allowed: crate_name == "bench",
            lock_helper_module: file_name == "lockdep.rs",
            epoch_manager_module: crate_name == "epoch",
        }
    }

    /// The strictest profile: every rule armed. Used by the fixture
    /// tests so snippets exercise all rules regardless of location.
    pub fn strict() -> Profile {
        Profile {
            placement_critical: true,
            wall_clock_allowed: false,
            lock_helper_module: false,
            epoch_manager_module: false,
        }
    }
}

/// How many following lines a sorted-collect may trail the flagged hash
/// iteration by and still count as "adjacent". Covers the idiom
/// `let mut v: Vec<_> = map.keys()…collect(); v.sort_unstable();` even
/// when the collect chain wraps over a few lines.
const SORT_ADJACENCY_WINDOW: usize = 6;

/// Analyze one file's source. `file` is only used to label findings.
pub fn analyze_source(file: &str, source: &str, profile: Profile) -> Vec<Finding> {
    let lines = lexer::split_lines(source);
    let in_test = lexer::test_regions(&lines);
    let mut findings = Vec::new();

    if profile.placement_critical {
        check_hash_iter(file, &lines, &in_test, &mut findings);
    }
    if !profile.wall_clock_allowed {
        check_wall_clock(file, &lines, &mut findings);
    }
    check_float_sort(file, &lines, &in_test, &mut findings);
    if !profile.lock_helper_module {
        check_raw_lock(file, &lines, &in_test, &mut findings);
    }
    check_lock_order(file, &lines, &in_test, &mut findings);
    if !profile.epoch_manager_module {
        check_epoch_pin(file, &lines, &in_test, &mut findings);
    }

    findings
}

/// Whether the finding on `idx` (0-based) is waived by a
/// `lint: <token>` comment on the same line or in the contiguous
/// comment block immediately above it.
fn waived(lines: &[Line], idx: usize, rule: Rule) -> bool {
    let token = rule.waiver();
    let has = |l: &Line| {
        l.comment
            .split("lint:")
            .skip(1)
            .any(|rest| rest.trim_start().starts_with(token))
    };
    if has(&lines[idx]) {
        return true;
    }
    // Walk up through comment-only lines (a waiver explaining *why* the
    // site is safe is usually longer than one line).
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let above = &lines[j];
        if !above.code.trim().is_empty() || above.comment.is_empty() {
            break;
        }
        if has(above) {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Rule 1: hash-iter
// ---------------------------------------------------------------------

/// Methods whose results depend on `HashMap`/`HashSet` iteration order.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".into_keys()",
    ".into_values()",
    ".drain()",
];

fn check_hash_iter(file: &str, lines: &[Line], in_test: &[bool], findings: &mut Vec<Finding>) {
    // Pass 1: register identifiers with a hash-typed declaration.
    // `self_names` are struct fields / struct-literal inits (matched as
    // `self.NAME`); `local_names` are `let`-bound (matched bare). The
    // registry is per-file, which is exactly the scope a lexical pass
    // can be sound about.
    let mut self_names: BTreeSet<String> = BTreeSet::new();
    let mut local_names: BTreeSet<String> = BTreeSet::new();
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = line.code.as_str();
        for ty in ["HashMap", "HashSet"] {
            // `NAME: HashMap<…>` (field/param decl or struct-literal init)
            // and `let NAME = HashMap::new()` / `…::with_capacity` /
            // `collect::<HashMap<…>>`.
            for (pos, _) in code.match_indices(ty) {
                let before = &code[..pos];
                if before.ends_with("::") && !before.ends_with("collections::") {
                    continue; // turbofish / assoc-fn tail, not a declaration
                }
                let decl = decl_name_before(before.trim_end_matches("collections::"));
                if let Some(name) = decl {
                    if line_declares_local(code, &name) {
                        // `let m: HashMap<…> = …` — a local binding.
                        local_names.insert(name);
                    } else {
                        self_names.insert(name);
                    }
                } else if let Some(name) = let_binding_name(code) {
                    // `let NAME = HashMap::new()` / turbofish collect.
                    local_names.insert(name);
                }
            }
        }
    }

    // Pass 2: flag iteration over a registered name.
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = line.code.as_str();
        let mut hit: Option<String> = None;
        for name in &self_names {
            let expr = format!("self.{name}");
            if uses_iteration(code, &expr) {
                hit = Some(expr);
                break;
            }
        }
        if hit.is_none() {
            for name in &local_names {
                if uses_iteration(code, name) {
                    hit = Some(name.clone());
                    break;
                }
            }
        }
        let Some(expr) = hit else { continue };
        if waived(lines, i, Rule::HashIter) {
            continue;
        }
        // Adjacent sorted-collect: a `.sort…` in the next few lines
        // means the arbitrary order is normalized before use.
        let window_end = (i + 1 + SORT_ADJACENCY_WINDOW).min(lines.len());
        let sorted_downstream = lines[i..window_end].iter().any(|l| {
            l.code.contains(".sort")
                || l.code.contains("BTreeMap::from")
                || l.code.contains("BTreeSet::from")
        });
        if sorted_downstream {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule: Rule::HashIter,
            message: format!(
                "iteration over hash collection `{expr}` without adjacent sort; \
                 order feeds placement/stats — sort the items or waive with \
                 `// lint: order-insensitive — <why>`"
            ),
        });
    }
}

/// Whether `code` iterates `expr` (method call or `for … in` loop).
fn uses_iteration(code: &str, expr: &str) -> bool {
    for m in ITER_METHODS {
        let pat = format!("{expr}{m}");
        for (pos, _) in code.match_indices(&pat) {
            if !ident_boundary_before(code, pos) {
                continue; // e.g. `other_self.sizes.iter()` for expr `self.sizes`
            }
            return true;
        }
    }
    // `for x in &expr {` / `for x in expr {` — the loop subject must be
    // exactly the expression (modulo `&`/`&mut`).
    if let Some(for_pos) = find_for(code) {
        if let Some(in_rel) = code[for_pos..].find(" in ") {
            let rest = &code[for_pos + in_rel + 4..];
            let subject = rest.split('{').next().unwrap_or(rest).trim();
            let subject = subject
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .trim();
            if subject == expr {
                return true;
            }
        }
    }
    false
}

/// Start of a `for ` keyword on this line, if any (` for ` with a
/// boundary, so `vec_for` or a `form(` call cannot match).
fn find_for(code: &str) -> Option<usize> {
    if code.trim_start().starts_with("for ") {
        return Some(code.len() - code.trim_start().len());
    }
    code.find(" for ").map(|p| p + 1)
}

/// True if the char before `pos` cannot extend an identifier/path (so
/// `self.sizes` at `pos` is not the tail of `not_self.sizes`).
fn ident_boundary_before(code: &str, pos: usize) -> bool {
    match code[..pos].chars().last() {
        None => true,
        Some(c) => !(c.is_alphanumeric() || c == '_' || c == '.'),
    }
}

/// Given the text before a `HashMap`/`HashSet` token, extract a
/// declaration name from a trailing `NAME: ` / `NAME: &` / `NAME: &mut `
/// pattern (struct field, fn parameter, or struct-literal init).
fn decl_name_before(before: &str) -> Option<String> {
    let t = before.trim_end();
    let t = t.strip_suffix('&').unwrap_or(t).trim_end();
    let t = t.strip_suffix("&mut").unwrap_or(t).trim_end();
    let t = t.strip_suffix(':')?.trim_end();
    let name: String = t
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(name)
    }
}

/// `let NAME = …` binding name on this line, if any.
fn let_binding_name(code: &str) -> Option<String> {
    let pos = code.find("let ")?;
    let rest = code[pos + 4..].trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Whether this line `let`-binds `name` (as opposed to declaring a field
/// or parameter of the same name).
fn line_declares_local(code: &str, name: &str) -> bool {
    let_binding_name(code).as_deref() == Some(name)
}

// ---------------------------------------------------------------------
// Rule 2: wall-clock
// ---------------------------------------------------------------------

fn check_wall_clock(file: &str, lines: &[Line], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        let hit = if code.contains("Instant::now") {
            Some("Instant::now")
        } else if code.contains("SystemTime") {
            Some("SystemTime")
        } else {
            None
        };
        let Some(what) = hit else { continue };
        if waived(lines, i, Rule::WallClock) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule: Rule::WallClock,
            message: format!(
                "`{what}` outside crates/bench — wall clock must never leak \
                 into simulated time (model time is `IoStats::total_ms`)"
            ),
        });
    }
}

// ---------------------------------------------------------------------
// Rule 3: float-sort
// ---------------------------------------------------------------------

fn check_float_sort(file: &str, lines: &[Line], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        if !line.code.contains(".partial_cmp(") {
            continue;
        }
        if waived(lines, i, Rule::FloatSort) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule: Rule::FloatSort,
            message: "`partial_cmp` as a comparison key — use `total_cmp` so a NaN \
                      cannot silently reorder (or panic out of) a sort"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------
// Rules 4 + 5: raw-lock and lock-order
// ---------------------------------------------------------------------

/// The declared lock hierarchy, outermost first. A lexical acquisition
/// is classified by substring-matching the receiver expression; lower
/// rank must be taken before higher rank.
const LOCK_CLASSES: &[(&str, u8, &str)] = &[
    ("writer", 0, "DbWriter"),
    ("shard", 1, "Shard"),
    ("pool", 1, "Shard"),
    ("array", 2, "ArmQueue"),
    ("arm", 2, "ArmQueue"),
    ("state", 3, "DiskCounters"),
    ("counter", 3, "DiskCounters"),
    ("geom", 4, "Geometry"),
    ("retired", 5, "Epoch"),
    ("epoch", 5, "Epoch"),
];

/// Classify a lock receiver expression (the text before `.lock()`).
fn classify_receiver(recv: &str) -> Option<(u8, &'static str)> {
    let lower = recv.to_lowercase();
    LOCK_CLASSES
        .iter()
        .find(|(needle, _, _)| lower.contains(needle))
        .map(|&(_, rank, name)| (rank, name))
}

/// Extract the receiver expression ending right before byte `pos`.
fn receiver_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | ':') {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..pos].to_string()
}

/// One lexical lock acquisition inside a fn body. Non-blocking
/// (`try_*`) acquisitions are recorded here too — holding a try-taken
/// lock while *blocking* on a lower-rank one is still an ordering bug —
/// but are themselves exempt from the hierarchy check, since a try
/// acquisition can never wait and therefore never closes a cycle.
struct Acq {
    line: usize,
    rank: u8,
    class: &'static str,
}

fn check_raw_lock(file: &str, lines: &[Line], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = line.code.as_str();
        let hit = ["try_lock()", ".lock()"]
            .iter()
            .find(|pat| code.contains(*pat));
        let Some(pat) = hit else { continue };
        if waived(lines, i, Rule::RawLock) {
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line: i + 1,
            rule: Rule::RawLock,
            message: format!(
                "raw `{pat}` outside the lockdep acquisition helpers — use \
                 `DepMutex::acquire`/`try_acquire` so the shard→disk hierarchy \
                 is checked in debug builds"
            ),
        });
    }
}

fn check_lock_order(file: &str, lines: &[Line], in_test: &[bool], findings: &mut Vec<Finding>) {
    // Per-fn scan: the list of classified acquisitions so far in the
    // current fn; a later acquisition with a *lower* rank than one
    // already taken contradicts the declared hierarchy.
    let mut acqs: Vec<Acq> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = line.code.as_str();
        if code.contains("fn ") && code.contains('(') {
            acqs.clear();
        }
        for pat in ["try_lock()", "try_acquire()", ".lock()", ".acquire()"] {
            for (pos, _) in code.match_indices(pat) {
                // `.lock()` also matches inside `try_lock()`; skip the
                // overlapping hit so each call is classified once.
                if matches!(pat, ".lock()" | ".acquire()") && code[..pos].ends_with("try_") {
                    continue;
                }
                let recv_end = if pat.starts_with('.') {
                    pos
                } else {
                    pos.saturating_sub(1)
                };
                let recv = receiver_before(code, recv_end);
                let Some((rank, class)) = classify_receiver(&recv) else {
                    continue;
                };
                let non_blocking = pat.starts_with("try");
                if !non_blocking && !waived(lines, i, Rule::LockOrder) {
                    if let Some(prior) = acqs.iter().find(|a| a.rank > rank) {
                        findings.push(Finding {
                            file: file.to_string(),
                            line: i + 1,
                            rule: Rule::LockOrder,
                            message: format!(
                                "acquires {class} (rank {rank}) after {} (rank {}, line {}) — \
                                 contradicts the DbWriter → Shard → ArmQueue → DiskCounters \
                                 → Geometry → Epoch hierarchy",
                                prior.class, prior.rank, prior.line
                            ),
                        });
                    }
                }
                acqs.push(Acq {
                    line: i + 1,
                    rank,
                    class,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Rule 6: epoch-pin
// ---------------------------------------------------------------------

/// Receiver fragments that identify epoch-pin accounting state.
const PIN_RECEIVERS: &[&str] = &["pin", "epoch"];

fn check_epoch_pin(file: &str, lines: &[Line], in_test: &[bool], findings: &mut Vec<Finding>) {
    for (i, line) in lines.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let code = line.code.as_str();
        for pat in [".fetch_add(", ".fetch_sub("] {
            let Some(pos) = code.find(pat) else { continue };
            let recv = receiver_before(code, pos).to_lowercase();
            if !PIN_RECEIVERS.iter().any(|n| recv.contains(n)) {
                continue;
            }
            if waived(lines, i, Rule::EpochPin) {
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: i + 1,
                rule: Rule::EpochPin,
                message: format!(
                    "raw `{}` on epoch-pin state `{recv}` outside crates/epoch — \
                     pin counts must move through the collector's RAII guards; an \
                     unpaired update either leaks a pin (reclamation stalls forever) \
                     or drops one early (a snapshot frees under a live reader)",
                    pat.trim_start_matches('.').trim_end_matches('('),
                ),
            });
        }
    }
}

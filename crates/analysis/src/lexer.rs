//! A minimal hand-rolled Rust lexer: splits a source file into lines of
//! *code text* (string and char literal contents blanked, comments
//! removed) and *comment text* (for waiver detection).
//!
//! The analyzer's rules are line-level pattern matches; the lexer's only
//! job is to make those matches sound — a `.lock()` inside a string
//! literal or a doc comment must not fire a diagnostic, and a waiver
//! inside a string must not suppress one. No external dependencies: the
//! workspace builds offline.

/// One source line, split into its analyzable channels.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// The original line, verbatim (allowlist substring matching).
    pub raw: String,
    /// Code with comments removed and literal contents blanked (the
    /// delimiting quotes remain so tokens do not merge).
    pub code: String,
    /// Concatenated comment text of the line (waiver scanning).
    pub comment: String,
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Inside `/* … */`; Rust block comments nest, so track the depth.
    BlockComment(u32),
    /// Inside a normal `"…"` string.
    Str,
    /// Inside a raw string `r##"…"##` with this many hashes.
    RawStr(u32),
}

/// Split `source` into per-line code/comment channels.
pub fn split_lines(source: &str) -> Vec<Line> {
    let mut out: Vec<Line> = Vec::new();
    let mut state = State::Normal;
    for raw in source.lines() {
        let mut line = Line {
            raw: raw.to_string(),
            ..Line::default()
        };
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        while i < b.len() {
            match state {
                State::BlockComment(depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        if depth == 1 {
                            state = State::Normal;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        i += 2;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        line.comment.push(b[i]);
                        i += 1;
                    }
                }
                State::Str => {
                    if b[i] == '\\' {
                        i += 2; // skip the escaped char (may run past EOL)
                    } else if b[i] == '"' {
                        line.code.push('"');
                        state = State::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if b[i] == '"' {
                        let mut n = 0u32;
                        while n < hashes && b.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            line.code.push('"');
                            state = State::Normal;
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                State::Normal => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        // Line comment (incl. doc comments) to EOL.
                        line.comment.extend(&b[i + 2..]);
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if (c == 'r' || c == 'b')
                        && !prev_is_ident(&line.code)
                        && raw_string_hashes(&b, i).is_some()
                    {
                        let (hashes, skip) = raw_string_hashes(&b, i).unwrap();
                        line.code.push('"');
                        state = State::RawStr(hashes);
                        i += skip;
                    } else if c == '\'' {
                        // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                        let next = b.get(i + 1).copied();
                        let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                            && b.get(i + 2) != Some(&'\'');
                        if is_lifetime {
                            line.code.push('\'');
                            i += 1;
                        } else {
                            // Char literal: consume to the closing quote.
                            line.code.push('\'');
                            i += 1;
                            while i < b.len() {
                                if b[i] == '\\' {
                                    i += 2;
                                } else if b[i] == '\'' {
                                    line.code.push('\'');
                                    i += 1;
                                    break;
                                } else {
                                    i += 1;
                                }
                            }
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Whether the code buffer ends in an identifier char (so the `r` of
/// `barrier"x"` or `b` of `sub"..."` is not taken for a raw-string
/// prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// If position `i` starts a raw (byte) string prefix (`r"`, `r#"`,
/// `br#"`, …), return `(hash_count, chars_to_skip_through_quote)`.
fn raw_string_hashes(b: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) == Some(&'"') {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Net brace delta of a code line (opens − closes).
pub fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Per-line flags marking `#[cfg(test)]` module bodies: the rules skip
/// test code (tests assert *on* determinism; they are not part of the
/// placement- or stats-critical paths the contracts protect).
pub fn test_regions(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i32 = 0;
    let mut pending_attr = false;
    // Depth at which the innermost test mod opened, if any.
    let mut test_open_depth: Option<i32> = None;
    for (i, line) in lines.iter().enumerate() {
        let code = line.code.as_str();
        if test_open_depth.is_some() {
            flags[i] = true;
        }
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        if pending_attr && code.contains("mod") && code.contains('{') {
            if test_open_depth.is_none() {
                test_open_depth = Some(depth);
                flags[i] = true;
            }
            pending_attr = false;
        }
        depth += brace_delta(code);
        if let Some(open) = test_open_depth {
            if depth <= open {
                test_open_depth = None;
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let a = 1; // trailing .lock()\n/* block\nstill comment */ let b = 2;\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.trim_end(), "let a = 1;");
        assert!(lines[0].comment.contains(".lock()"));
        assert_eq!(lines[1].code, "");
        assert_eq!(lines[2].code.trim(), "let b = 2;");
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ still */ code();\n";
        let lines = split_lines(src);
        assert_eq!(lines[0].code.trim(), "code();");
    }

    #[test]
    fn blanks_string_contents() {
        let src = "let s = \"Instant::now() .lock()\"; s.len();\n";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(!lines[0].code.contains(".lock()"));
        assert!(lines[0].code.contains("s.len()"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src = "let s = r#\"x \" .lock() \"# ; let t = \"a\\\"b.lock()\";\nnext();\n";
        let lines = split_lines(src);
        assert!(!lines[0].code.contains(".lock()"));
        assert_eq!(lines[1].code.trim(), "next();");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = '{'; }\n";
        let lines = split_lines(src);
        // The brace inside the char literal must not count.
        assert_eq!(brace_delta(&lines[0].code), 0);
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let src = "let s = \"first\nInstant::now()\nlast\"; done();\n";
        let lines = split_lines(src);
        assert!(!lines[1].code.contains("Instant"));
        assert!(lines[2].code.contains("done()"));
    }

    #[test]
    fn test_region_detection() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn inner() {}
}
fn after() {}
";
        let lines = split_lines(src);
        let flags = test_regions(&lines);
        assert_eq!(flags, vec![false, false, true, true, true, false]);
    }
}

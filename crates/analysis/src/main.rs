//! CLI for the invariant analyzer.
//!
//! ```text
//! cargo run -p spatialdb-analysis --release -- crates/
//! cargo run -p spatialdb-analysis --release -- --allowlist audit.txt crates/
//! cargo run -p spatialdb-analysis --release -- --changed-since HEAD crates/
//! ```
//!
//! `--changed-since REV` analyzes only the `.rs` files `git diff
//! --name-only REV` reports under the given roots — the pre-commit /
//! pull-request mode: seconds instead of a full-tree sweep, same
//! rules, same allowlist.
//!
//! Exits 0 when every analyzed file is clean (after allowlisting),
//! 1 when any finding survives, 2 on usage or I/O errors.

use spatialdb_analysis::{analyze_tree_with_allowlist, changed_sources, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: spatialdb-analysis [--allowlist FILE] [--changed-since REV] PATH...";

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut changed_since: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allowlist" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --allowlist requires a path");
                    return ExitCode::from(2);
                };
                allowlist_path = Some(PathBuf::from(p));
            }
            "--changed-since" => {
                let Some(rev) = args.next() else {
                    eprintln!("error: --changed-since requires a git revision");
                    return ExitCode::from(2);
                };
                changed_since = Some(rev);
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    }

    // Default allowlist: `analysis-allowlist.txt` next to the first
    // root, so `spatialdb-analysis crates/` picks up the repo's audited
    // sites without extra flags.
    let allow = match &allowlist_path {
        Some(p) => {
            if !p.is_file() {
                eprintln!("error: allowlist {} not found", p.display());
                return ExitCode::from(2);
            }
            Allowlist::load(p)
        }
        None => {
            let default = roots[0]
                .parent()
                .unwrap_or(&roots[0])
                .join("analysis-allowlist.txt");
            Allowlist::load(&default)
        }
    };

    // In changed-since mode the roots become a scope filter and the
    // actual analysis units are the changed files themselves.
    let targets = match &changed_since {
        Some(rev) => match changed_sources(rev, &roots) {
            Ok(files) => {
                if files.is_empty() {
                    println!("spatialdb-analysis: no .rs files changed since {rev}");
                    return ExitCode::SUCCESS;
                }
                files
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        },
        None => roots.clone(),
    };

    let mut total = 0usize;
    for root in &targets {
        match analyze_tree_with_allowlist(root, &allow) {
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                total += findings.len();
            }
            Err(e) => {
                eprintln!("error: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if total > 0 {
        eprintln!(
            "spatialdb-analysis: {total} finding(s); audited sites go in the \
             allowlist or get a `// lint: <waiver>` comment"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

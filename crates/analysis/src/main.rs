//! CLI for the invariant analyzer.
//!
//! ```text
//! cargo run -p spatialdb-analysis --release -- crates/
//! cargo run -p spatialdb-analysis --release -- --allowlist audit.txt crates/
//! ```
//!
//! Exits 0 when every analyzed file is clean (after allowlisting),
//! 1 when any finding survives, 2 on usage or I/O errors.

use spatialdb_analysis::{analyze_tree_with_allowlist, Allowlist};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allowlist" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --allowlist requires a path");
                    return ExitCode::from(2);
                };
                allowlist_path = Some(PathBuf::from(p));
            }
            "--help" | "-h" => {
                eprintln!("usage: spatialdb-analysis [--allowlist FILE] PATH...");
                return ExitCode::SUCCESS;
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: spatialdb-analysis [--allowlist FILE] PATH...");
        return ExitCode::from(2);
    }

    // Default allowlist: `analysis-allowlist.txt` next to the first
    // root, so `spatialdb-analysis crates/` picks up the repo's audited
    // sites without extra flags.
    let allow = match &allowlist_path {
        Some(p) => {
            if !p.is_file() {
                eprintln!("error: allowlist {} not found", p.display());
                return ExitCode::from(2);
            }
            Allowlist::load(p)
        }
        None => {
            let default = roots[0]
                .parent()
                .unwrap_or(&roots[0])
                .join("analysis-allowlist.txt");
            Allowlist::load(&default)
        }
    };

    let mut total = 0usize;
    for root in &roots {
        match analyze_tree_with_allowlist(root, &allow) {
            Ok(findings) => {
                for f in &findings {
                    println!("{f}");
                }
                total += findings.len();
            }
            Err(e) => {
                eprintln!("error: {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    }
    if total > 0 {
        eprintln!(
            "spatialdb-analysis: {total} finding(s); audited sites go in the \
             allowlist or get a `// lint: <waiver>` comment"
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! Fixture suite: each deliberately-bad snippet under `tests/fixtures/`
//! must trip exactly the rule it was written for, at the marked lines —
//! and the real workspace (plus its allowlist) must come back clean.
//!
//! Markers inside a fixture: `// BAD` lines must be flagged by the
//! fixture's rule, `// OK` lines must not. Other rules may fire
//! elsewhere in a fixture (e.g. raw-lock inside the lock-order
//! snippet); only the fixture's own rule is asserted line-by-line.

use spatialdb_analysis::{analyze_source, analyze_tree_with_allowlist, Allowlist, Profile, Rule};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// 1-based line numbers of lines containing `marker`.
fn marker_lines(source: &str, marker: &str) -> Vec<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains(marker))
        .map(|(i, _)| i + 1)
        .collect()
}

fn assert_rule_fires(name: &str, rule: Rule) {
    let path = fixture_path(name);
    let source = std::fs::read_to_string(&path).unwrap();
    let file = path.to_string_lossy().into_owned();
    let findings = analyze_source(&file, &source, Profile::strict());

    let bad = marker_lines(&source, "// BAD");
    assert!(!bad.is_empty(), "{name}: fixture has no `// BAD` markers");
    for line in &bad {
        assert!(
            findings.iter().any(|f| f.rule == rule && f.line == *line),
            "{name}:{line}: expected [{rule:?}] to fire; findings: {findings:#?}"
        );
    }
    for line in marker_lines(&source, "// OK") {
        assert!(
            !findings.iter().any(|f| f.rule == rule && f.line == line),
            "{name}:{line}: [{rule:?}] fired on an `// OK` line; findings: {findings:#?}"
        );
    }
    // Every finding of this rule sits on a marked line — no strays.
    for f in findings.iter().filter(|f| f.rule == rule) {
        assert!(
            bad.contains(&f.line),
            "{name}:{}: stray [{rule:?}] on an unmarked line: {f}",
            f.line
        );
    }
}

#[test]
fn hash_iter_fixture() {
    assert_rule_fires("hash_iter.rs", Rule::HashIter);
}

#[test]
fn wall_clock_fixture() {
    assert_rule_fires("wall_clock.rs", Rule::WallClock);
}

#[test]
fn float_sort_fixture() {
    assert_rule_fires("float_sort.rs", Rule::FloatSort);
}

#[test]
fn raw_lock_fixture() {
    assert_rule_fires("raw_lock.rs", Rule::RawLock);
}

#[test]
fn lock_order_fixture() {
    assert_rule_fires("lock_order.rs", Rule::LockOrder);
}

#[test]
fn epoch_pin_fixture() {
    assert_rule_fires("epoch_pin.rs", Rule::EpochPin);
}

/// The CLI must exit 1 (findings) on the fixture tree and name every
/// rule in its diagnostics.
#[test]
fn cli_exits_nonzero_on_fixtures() {
    let out = Command::new(env!("CARGO_BIN_EXE_spatialdb-analysis"))
        .arg(fixture_path(""))
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    for rule in [
        "hash-iter",
        "wall-clock",
        "float-sort",
        "raw-lock",
        "lock-order",
        "epoch-pin",
    ] {
        assert!(
            stdout.contains(&format!("[{rule}]")),
            "missing [{rule}] in CLI output: {stdout}"
        );
    }
}

/// Each fixture on its own is enough to fail the run.
#[test]
fn cli_exits_nonzero_on_each_fixture() {
    for name in [
        "hash_iter.rs",
        "wall_clock.rs",
        "float_sort.rs",
        "raw_lock.rs",
        "lock_order.rs",
        "epoch_pin.rs",
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_spatialdb-analysis"))
            .arg(fixture_path(name))
            .output()
            .unwrap();
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name}: expected exit 1; stdout: {}",
            String::from_utf8_lossy(&out.stdout)
        );
    }
}

/// The real workspace, analyzed exactly as CI runs it, is clean.
#[test]
fn workspace_is_clean() {
    let repo = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let allow = Allowlist::load(&repo.join("analysis-allowlist.txt"));
    let findings = analyze_tree_with_allowlist(&repo.join("crates"), &allow).unwrap();
    assert!(
        findings.is_empty(),
        "workspace has unaudited findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

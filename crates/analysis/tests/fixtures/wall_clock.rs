//! Fixture: wall clock leaking into what should be simulated time.
//! Lines marked BAD must be flagged; OK lines must not.
//! Not compiled — cargo only builds top-level `tests/*.rs` files.

pub fn measure_query() -> u128 {
    let start = std::time::Instant::now(); // BAD: wall-clock
    let _stamp = std::time::SystemTime::now(); // BAD: wall-clock
    start.elapsed().as_millis()
}

pub fn simulated_cost(pages: u64, ms_per_page: f64) -> f64 {
    pages as f64 * ms_per_page // OK: model time, no clock
}

//! Fixture: raw epoch-pin arithmetic outside the epoch crate.
//! Lines marked BAD must be flagged; OK lines must not.
//! Not compiled — cargo only builds top-level `tests/*.rs` files.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Reader {
    pins: AtomicUsize,
    epoch_count: AtomicUsize,
    requests: AtomicUsize,
}

impl Reader {
    pub fn enter(&self) {
        self.pins.fetch_add(1, Ordering::SeqCst); // BAD: epoch-pin
    }

    pub fn leave(&self) {
        self.epoch_count.fetch_sub(1, Ordering::SeqCst); // BAD: epoch-pin
    }

    pub fn tally(&self) {
        // A non-pin atomic is none of this rule's business.
        self.requests.fetch_add(1, Ordering::Relaxed); // OK: not pin state
    }

    pub fn audited(&self) {
        // lint: epoch-pin-audited — fixture demonstrating the waiver.
        self.pins.fetch_add(1, Ordering::SeqCst); // OK: waived
    }
}

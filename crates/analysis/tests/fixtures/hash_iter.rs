//! Fixture: hash-collection iteration whose order leaks into results.
//! Lines marked BAD must be flagged; OK lines must not.
//! Not compiled — cargo only builds top-level `tests/*.rs` files.

use std::collections::{HashMap, HashSet};

pub struct Registry {
    sizes: HashMap<u64, usize>,
    seen: HashSet<u64>,
}

impl Registry {
    /// Order-dependent fold over an unordered map: the checksum changes
    /// run-to-run with the hasher seed.
    pub fn checksum(&self) -> usize {
        let mut acc = 0usize;
        for (page, size) in self.sizes.iter() { // BAD: hash-iter
            acc = acc.wrapping_mul(31).wrapping_add(*page as usize + size);
        }
        acc
    }

    /// "First" element of a set with no defined order.
    pub fn first_seen(&self) -> Option<u64> {
        self.seen.iter().copied().next() // BAD: hash-iter
    }

    // -- padding so the sorted case below sits outside the ------------
    // -- analyzer's adjacency window for the BAD lines above ----------

    /// Collect-then-sort normalizes the arbitrary order before use.
    pub fn sorted_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.sizes.keys().copied().collect(); // OK: adjacent sort
        v.sort_unstable();
        v
    }

    pub fn total(&self) -> usize {
        // lint: order-insensitive — an integer sum commutes, so the
        // iteration order never reaches the result.
        self.sizes.values().sum() // OK: waived
    }
}

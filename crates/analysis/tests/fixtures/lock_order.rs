//! Fixture: nested acquisition contradicting the DbWriter → Shard →
//! ArmQueue → DiskCounters → Geometry → Epoch hierarchy. Lines marked
//! BAD must be flagged; OK lines must not. Not compiled — cargo only
//! builds `tests/*.rs` files.

use std::sync::Mutex;

pub struct Pool {
    state: Mutex<u64>,
    shards: Vec<Mutex<Vec<u8>>>,
}

impl Pool {
    /// Counters (rank 3) taken first, then a blocking shard (rank 1)
    /// acquisition underneath it — the inverted order that deadlocks
    /// against the flush path.
    pub fn drain_backwards(&self) {
        let counters = self.state.lock().unwrap();
        let shard = self.shards[0].lock().unwrap(); // BAD: lock-order
        drop(shard);
        drop(counters);
    }

    /// The declared order: shard before counters.
    pub fn drain_forwards(&self) {
        let shard = self.shards[0].lock().unwrap();
        let counters = self.state.lock().unwrap(); // OK: descends the hierarchy
        drop(counters);
        drop(shard);
    }
}

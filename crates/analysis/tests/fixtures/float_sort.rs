//! Fixture: float sort keys built on `partial_cmp`.
//! Lines marked BAD must be flagged; OK lines must not.
//! Not compiled — cargo only builds top-level `tests/*.rs` files.

/// A NaN in `xs` makes `partial_cmp` return `None`: the `unwrap`
/// panics, and with `sort_by`'s weaker guarantees a non-total order
/// can scramble the result instead.
pub fn rank_costs(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // BAD: float-sort
    xs
}

pub fn rank_costs_total(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b)); // OK: total order
    xs
}

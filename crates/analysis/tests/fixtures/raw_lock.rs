//! Fixture: raw mutex acquisition outside the lockdep helpers.
//! Lines marked BAD must be flagged; OK lines must not.
//! Not compiled — cargo only builds top-level `tests/*.rs` files.

use std::sync::Mutex;

pub struct Counters {
    state: Mutex<u64>,
}

impl Counters {
    pub fn bump(&self) {
        *self.state.lock().unwrap() += 1; // BAD: raw-lock
    }

    pub fn probe(&self) -> bool {
        self.state.try_lock().is_ok() // BAD: raw-lock
    }

    pub fn read(&self) -> u64 {
        // lint: raw-lock-audited — fixture demonstrating the waiver.
        *self.state.lock().unwrap() // OK: waived
    }
}

//! Declarative scenarios: declare an experiment — dataset, engine,
//! workload, replay grid — and let the harness drive it.
//!
//! Run with: `cargo run --release -p spatialdb-workload --example scenario`

use spatialdb::disk::{ArmPolicy, StripePolicy};
use spatialdb::{Arrival, EngineConfig, Routing};
use spatialdb_workload::{org_label, policy_label, Dataset, Mix, Scenario, WindowSweep};

fn main() {
    // One declaration, end to end: a seeded uniform dataset split over
    // two databases, a machine with a region-routed 4-shard pool and a
    // 4-arm disk array, an open-arrival window sweep replayed at two
    // queue depths under both arm schedulers, and a mixed
    // window/point/join/insert stream per storage organization.
    let report = Scenario::new("tour")
        .dataset(Dataset::uniform(3_000).polyline_segments(6))
        .databases(2)
        .engine(
            EngineConfig::default()
                .buffer_pages(1024)
                .shards(4)
                .routing(Routing::ByRegion)
                .arms(4, StripePolicy::RoundRobin),
        )
        .windows(
            WindowSweep::new(48)
                .size_base(0.05)
                .size_amp(0.15)
                .size_period(5),
        )
        .arrivals(Arrival::open(0.7))
        .sweep_depths(&[4, 16])
        .sweep_policies(&[ArmPolicy::Fcfs, ArmPolicy::Elevator])
        .mix(Mix::new().window(0.6).point(0.2).join(0.1).insert(0.1))
        .operations(64)
        .seed(7)
        .run();

    // The chainable gates: every phase's I/O books must balance, and
    // no cell may blow the latency budget.
    report
        .assert_stats_conserved()
        .assert_p99_under_ms(1_000_000.0);

    println!("cells (org × depth × policy, 4 arms each):");
    for cell in report.cells() {
        println!(
            "  {:>9} depth {:2} {:>8}: p50 {:8.1} ms, p99 {:9.1} ms, {:6.1} iops",
            org_label(cell.org),
            cell.depth,
            policy_label(cell.policy),
            cell.latency.p50,
            cell.latency.p99,
            cell.iops
        );
    }
    for m in &report.mixes {
        println!(
            "mix on {:>9}: {} windows, {} points, {} joins, {} inserts -> {} results",
            m.org.map_or("?", org_label),
            m.windows,
            m.points,
            m.joins,
            m.inserts,
            m.results
        );
    }

    // The same scenario and seed render this report byte-identically
    // at any thread count; `to_json()` is the contract's witness.
    println!(
        "\nreport is {} bytes of deterministic JSON",
        report.to_json().len()
    );
}

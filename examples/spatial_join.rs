//! A complete spatial join between two generated maps — streets (map 1)
//! against rivers/boundaries/railways (map 2) — comparing the secondary
//! and cluster organizations, like Figure 17 at a small scale.
//!
//! Run with: `cargo run --release -p spatialdb-core --example spatial_join`

use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::disk::Disk;
use spatialdb::experiments::{build_organization_on, records_of, ClusterSizing};
use spatialdb::join::{JoinConfig, SpatialJoin};
use spatialdb::report::{f, Table};
use spatialdb::storage::{new_shared_pool, OrganizationKind, SpatialStore, TransferTechnique};

fn main() {
    let series = SeriesId::A;
    let m1 = SpatialMap::generate(
        DataSet {
            series,
            map: MapId::Map1,
        },
        0.02,
        GeometryMode::MbrOnly,
        1994,
    );
    let m2 = SpatialMap::generate(
        DataSet {
            series,
            map: MapId::Map2,
        },
        0.02,
        GeometryMode::MbrOnly,
        1994,
    );
    println!(
        "joining {} streets against {} linear features\n",
        m1.len(),
        m2.len()
    );
    let smax = DataSet {
        series,
        map: MapId::Map1,
    }
    .spec()
    .smax_bytes as u64;

    let mut t = Table::new(vec![
        "organization",
        "MBR pairs",
        "MBR-join (s)",
        "obj. transfer (s)",
        "exact test (s)",
        "total (s)",
    ]);
    let mut totals = Vec::new();
    for kind in [OrganizationKind::Secondary, OrganizationKind::Cluster] {
        // Both maps live on one simulated machine with one shared
        // 640-page LRU buffer.
        let disk = Disk::with_defaults();
        let pool = new_shared_pool(disk.clone(), 640);
        let (r, _) = build_organization_on(
            kind,
            &records_of(&m1.objects),
            smax,
            ClusterSizing::Plain,
            disk.clone(),
            pool.clone(),
        );
        let (s, _) = build_organization_on(
            kind,
            &records_of(&m2.objects),
            smax,
            ClusterSizing::Plain,
            disk.clone(),
            pool,
        );
        r.pool().reset(640);
        disk.reset_stats();
        let stats = SpatialJoin::new(&r, &s).run(JoinConfig {
            transfer: TransferTechnique::Complete,
            exact_test_ms: 0.75,
        });
        totals.push(stats.total_ms() / 1000.0);
        t.row(vec![
            kind.to_string(),
            stats.mbr_pairs.to_string(),
            f(stats.mbr_join_ms / 1000.0, 1),
            f(stats.transfer_ms / 1000.0, 1),
            f(stats.exact_test_ms / 1000.0, 1),
            f(stats.total_ms() / 1000.0, 1),
        ]);
    }
    println!("{t}");
    println!(
        "global clustering speeds this join up {:.1}x — the object-transfer\n\
         step collapses while MBR join and exact tests stay unchanged (§6.3).",
        totals[0] / totals[1]
    );
}

//! Quickstart: create a cluster-organized spatial database, load a few
//! map features, and run the three basic queries of the paper (§2):
//! point query, window query, spatial join.
//!
//! Run with: `cargo run --release -p spatialdb-core --example quickstart`

use spatialdb::db::spatial_join;
use spatialdb::geom::{Point, Polyline, Rect};
use spatialdb::{DbOptions, JoinConfig, OrganizationKind, Workspace};

fn main() {
    // A workspace is one simulated machine: a 1994-style magnetic disk
    // (9 ms seek, 6 ms latency, 1 ms transfer per 4 KB page) plus an LRU
    // buffer of 512 pages.
    let ws = Workspace::new(512);

    // A database using the paper's cluster organization: the R*-tree
    // indexes MBRs, and each data page's objects live together in one
    // cluster unit of physically consecutive pages.
    let mut streets = ws.create_database(DbOptions::new(OrganizationKind::Cluster));

    // Three streets of a toy town.
    streets.insert_polyline(
        1,
        Polyline::new(vec![
            Point::new(0.10, 0.10),
            Point::new(0.15, 0.105),
            Point::new(0.20, 0.10),
        ]),
    );
    streets.insert_polyline(
        2,
        Polyline::new(vec![Point::new(0.15, 0.05), Point::new(0.15, 0.18)]),
    );
    streets.insert_polyline(
        3,
        Polyline::new(vec![Point::new(0.40, 0.40), Point::new(0.45, 0.45)]),
    );
    streets.finish_loading();

    // Window query: everything sharing a point with the window.
    let window = Rect::new(0.12, 0.08, 0.18, 0.12);
    let in_window = streets.window_query(&window);
    println!("objects intersecting {window}: {in_window:?}");
    assert_eq!(in_window, vec![1, 2]);

    // Point query: everything containing the query point.
    let on_crossing = streets.point_query(&Point::new(0.15, 0.10));
    println!("objects through (0.15, 0.10): {on_crossing:?}");

    // A second data set on the same machine: rivers.
    let mut rivers = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    rivers.insert_polyline(
        100,
        Polyline::new(vec![Point::new(0.05, 0.15), Point::new(0.25, 0.02)]),
    );
    rivers.finish_loading();

    // Spatial join: which streets cross which rivers?
    let (bridges, stats) = spatial_join(&mut streets, &mut rivers, JoinConfig::default());
    println!("street x river crossings: {bridges:?}");
    println!(
        "join cost: {} candidate pairs, {:.1} ms MBR join, {:.1} ms transfer, {:.1} ms exact tests",
        stats.mbr_pairs, stats.mbr_join_ms, stats.transfer_ms, stats.exact_test_ms
    );

    // All simulated I/O is accounted.
    println!("total simulated I/O: {}", streets.io_stats());
}

//! Quickstart: create a cluster-organized spatial database, load a few
//! map features, and run the three basic queries of the paper (§2) —
//! point query, window query, spatial join — through the streaming
//! `Query` builder.
//!
//! Run with: `cargo run --release -p spatialdb-core --example quickstart`

use spatialdb::geom::{HasMbr, Point, Polygon, Polyline, Rect};
use spatialdb::{DbOptions, EngineConfig, OrganizationKind, Workspace};

fn main() {
    // A workspace is one simulated machine: a 1994-style magnetic disk
    // (9 ms seek, 6 ms latency, 1 ms transfer per 4 KB page) plus an LRU
    // buffer of 512 pages. Every knob of the machine — buffer capacity,
    // pool sharding, the disk-arm array — lives on one validated
    // `EngineConfig` (`Workspace::new(512)` is shorthand for exactly
    // this default).
    let ws = Workspace::from_config(EngineConfig::default().buffer_pages(512));

    // A database using the paper's cluster organization: the R*-tree
    // indexes MBRs, and each data page's objects live together in one
    // cluster unit of physically consecutive pages.
    let mut streets = ws.create_database(DbOptions::new(OrganizationKind::Cluster));

    // Three streets of a toy town (polylines) and its market square
    // (a polygon): inserts accept any geometry.
    streets.insert(
        1,
        Polyline::new(vec![
            Point::new(0.10, 0.10),
            Point::new(0.15, 0.105),
            Point::new(0.20, 0.10),
        ]),
    );
    streets.insert(
        2,
        Polyline::new(vec![Point::new(0.15, 0.05), Point::new(0.15, 0.18)]),
    );
    streets.insert(
        3,
        Polyline::new(vec![Point::new(0.40, 0.40), Point::new(0.45, 0.45)]),
    );
    streets.insert(
        4,
        Polygon::new(vec![
            Point::new(0.13, 0.09),
            Point::new(0.17, 0.09),
            Point::new(0.17, 0.115),
            Point::new(0.13, 0.115),
        ]),
    );
    streets.finish_loading();

    // Window query: a lazy cursor over everything sharing a point with
    // the window, with the cost of this query alone attached.
    let window = Rect::new(0.12, 0.08, 0.18, 0.12);
    let mut in_window = streets.query().window(window).run();
    println!(
        "query cost: {} candidates, {:.1} ms simulated I/O",
        in_window.stats().candidates,
        in_window.stats().io_ms
    );
    let ids: Vec<u64> = in_window.by_ref().map(|(id, _)| id).collect();
    println!("objects intersecting {window}: {ids:?}");
    assert_eq!(ids, vec![1, 2, 4]);

    // Point query: everything containing the query point, with the
    // exact geometry streamed alongside the id.
    for (id, geometry) in streets.query().point(Point::new(0.15, 0.10)).run() {
        println!("object through (0.15, 0.10): {id} (mbr {})", geometry.mbr());
    }

    // A second data set on the same machine: rivers.
    let mut rivers = ws.create_database(DbOptions::new(OrganizationKind::Cluster));
    rivers.insert(
        100,
        Polyline::new(vec![Point::new(0.05, 0.15), Point::new(0.25, 0.02)]),
    );
    rivers.finish_loading();

    // Spatial join: which streets cross which rivers?
    let bridges = streets.join(&rivers).run();
    let stats = bridges.stats();
    let pairs = bridges.pairs();
    println!("street x river crossings: {pairs:?}");
    println!(
        "join cost: {} candidate pairs, {:.1} ms MBR join, {:.1} ms transfer, {:.1} ms exact tests",
        stats.mbr_pairs, stats.mbr_join_ms, stats.transfer_ms, stats.exact_test_ms
    );

    // All simulated I/O is accounted.
    println!("total simulated I/O: {}", streets.io_stats());
}

//! Window queries over a generated TIGER-like street map: compares the
//! three organization models and the cluster organization's query
//! techniques on the same workload, reproducing the mechanics of
//! Figures 8 and 10 at a small scale.
//!
//! Run with: `cargo run --release -p spatialdb-core --example window_queries`

use spatialdb::data::workload::WindowQuerySet;
use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap};
use spatialdb::experiments::{build_organization, records_of, ClusterSizing};
use spatialdb::report::{f, Table};
use spatialdb::storage::{OrganizationKind, QueryStats, SpatialStore, WindowTechnique};

fn main() {
    // 2% of map 1, series A: ~2,600 streets in clustered counties.
    let dataset = DataSet {
        series: SeriesId::A,
        map: MapId::Map1,
    };
    let map = SpatialMap::generate(dataset, 0.02, GeometryMode::MbrOnly, 1994);
    let records = records_of(&map.objects);
    let smax = dataset.spec().smax_bytes as u64;
    println!(
        "generated {} streets, avg {:.0} B/object\n",
        map.len(),
        map.avg_object_bytes()
    );

    // --- organization models ------------------------------------------
    let mut t = Table::new(vec![
        "window area (%)",
        "avg answers",
        "sec. org. (ms/4KB)",
        "prim. org. (ms/4KB)",
        "cluster org. (ms/4KB)",
    ]);
    for area in [1e-4, 1e-3, 1e-2, 1e-1] {
        let queries = WindowQuerySet::generate(&map, area, 64, 7);
        let mut cells = Vec::new();
        let mut answers = 0.0;
        for kind in [
            OrganizationKind::Secondary,
            OrganizationKind::Primary,
            OrganizationKind::Cluster,
        ] {
            let (mut org, _) = build_organization(kind, &records, smax, ClusterSizing::Plain, 256);
            let mut total = QueryStats::default();
            for w in &queries.windows {
                org.begin_query();
                total.accumulate(&org.window_query(w, WindowTechnique::Complete));
            }
            answers = total.candidates as f64 / queries.windows.len() as f64;
            cells.push(f(total.ms_per_4kb().unwrap_or(0.0), 1));
        }
        let mut row = vec![format!("{}", area * 100.0), f(answers, 1)];
        row.extend(cells);
        t.row(row);
    }
    println!("organization models (complete-cluster technique):\n{t}");

    // --- cluster-organization techniques ------------------------------
    let (mut cluster, _) = build_organization(
        OrganizationKind::Cluster,
        &records,
        smax,
        ClusterSizing::Plain,
        256,
    );
    let mut t = Table::new(vec![
        "window area (%)",
        "complete",
        "threshold",
        "SLM",
        "optimum",
    ]);
    for area in [1e-4, 1e-3, 1e-2] {
        let queries = WindowQuerySet::generate(&map, area, 64, 7);
        let mut row = vec![format!("{}", area * 100.0)];
        for tech in [
            WindowTechnique::Complete,
            WindowTechnique::Threshold,
            WindowTechnique::Slm,
            WindowTechnique::Optimum,
        ] {
            let mut total = QueryStats::default();
            for w in &queries.windows {
                cluster.begin_query();
                total.accumulate(&cluster.window_query(w, tech));
            }
            row.push(f(total.ms_per_4kb().unwrap_or(0.0), 1));
        }
        t.row(row);
    }
    println!("cluster-organization techniques (ms/4KB):\n{t}");
    println!("note how the technique only matters for selective windows —");
    println!("for large windows, reading complete cluster units is already");
    println!("close to optimal (§5.4.3 of the paper).");
}

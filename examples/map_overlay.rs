//! Map overlay with exact geometry: find every place where a street
//! crosses a river in a generated county, using full polyline geometry
//! and the decomposed-representation refinement ([SK91]).
//!
//! This exercises the end-to-end path a GIS application would use:
//! generation → loading → join with exact refinement → per-feature
//! reporting with TIGER-style classification.
//!
//! Run with: `cargo run --release -p spatialdb-core --example map_overlay`

use spatialdb::data::{DataSet, GeometryMode, MapId, SeriesId, SpatialMap, TigerRecord};
use spatialdb::{DbOptions, OrganizationKind, Workspace};

fn main() {
    // Small maps with full vertex geometry retained.
    let streets_map = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map1,
        },
        0.004,
        GeometryMode::Full,
        2024,
    );
    let rivers_map = SpatialMap::generate(
        DataSet {
            series: SeriesId::A,
            map: MapId::Map2,
        },
        0.004,
        GeometryMode::Full,
        2024,
    );

    let ws = Workspace::new(1024);
    let mut streets =
        ws.create_database(DbOptions::new(OrganizationKind::Cluster).smax_bytes(40 * 1024));
    let mut waterways =
        ws.create_database(DbOptions::new(OrganizationKind::Cluster).smax_bytes(40 * 1024));

    for obj in &streets_map.objects {
        streets.insert(obj.id, obj.geometry.clone().expect("full geometry"));
    }
    for obj in &rivers_map.objects {
        waterways.insert(obj.id, obj.geometry.clone().expect("full geometry"));
    }
    streets.finish_loading();
    waterways.finish_loading();
    println!(
        "loaded {} streets and {} linear features",
        streets.len(),
        waterways.len()
    );

    // The overlay: a complete intersection join with exact refinement,
    // streamed through the join cursor.
    let cursor = streets.join(&waterways).run();
    let stats = cursor.stats();
    let crossings = cursor.pairs();
    println!(
        "MBR join produced {} candidate pairs; {} survive the exact test\n",
        stats.mbr_pairs,
        crossings.len()
    );

    // Report the first few crossings TIGER-style.
    for (street_id, feature_id) in crossings.iter().take(8) {
        let street = &streets_map.objects[*street_id as usize];
        let feature = &rivers_map.objects[*feature_id as usize];
        let srec = TigerRecord::from_object(street);
        let frec = TigerRecord::from_object(feature);
        println!(
            "TLID {} ({} {}) crosses TLID {} ({} {}) near ({:.3}, {:.3})",
            srec.tlid,
            srec.cfcc,
            srec.class,
            frec.tlid,
            frec.cfcc,
            frec.class,
            street.mbr.intersection(&feature.mbr).center().x,
            street.mbr.intersection(&feature.mbr).center().y,
        );
    }
    println!(
        "\nsimulated cost: {:.1} s I/O + {:.1} s exact tests",
        (stats.mbr_join_ms + stats.transfer_ms) / 1000.0,
        stats.exact_test_ms / 1000.0
    );
}
